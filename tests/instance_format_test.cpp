// Tests for the binary ".accui" instance format: bit-exact round trips
// against the text format, ScorePack table adoption, the corruption
// matrix (every section, header, footer, torn tails), atomic-write fault
// injection, the out-of-core generator, and format auto-detection.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/instance_format.hpp"
#include "core/instance_io.hpp"
#include "core/score.hpp"
#include "core/simulator.hpp"
#include "core/strategies/abm.hpp"
#include "datasets/datasets.hpp"
#include "datasets/stream_gen.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io_env.hpp"

namespace accu {
namespace {

namespace fmt = instance_format;

AccuInstance small_instance(std::uint64_t seed, double q1 = 0.0,
                            double q2 = 1.0) {
  util::Rng rng(seed);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 8;
  config.cautious_below_prob = q1;
  config.cautious_above_prob = q2;
  return datasets::make_dataset("facebook", config, rng);
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return bytes;
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string text_of(const AccuInstance& instance) {
  std::stringstream buffer;
  write_instance(instance, buffer);
  return buffer.str();
}

/// Rewrites the footer CRC after a deliberate in-place footer edit, so the
/// loader reaches the check under test instead of stopping at the CRC.
void refresh_footer_crc(std::vector<char>& bytes) {
  fmt::Header h;
  std::memcpy(&h, bytes.data(), sizeof h);
  const std::size_t entries_len =
      static_cast<std::size_t>(h.footer_length) - sizeof(std::uint32_t);
  const std::uint32_t crc =
      util::crc32(bytes.data() + h.footer_offset, entries_len);
  std::memcpy(bytes.data() + h.footer_offset + entries_len, &crc,
              sizeof crc);
}

void refresh_header_crc(std::vector<char>& bytes) {
  const std::uint32_t crc = util::crc32(bytes.data(), sizeof(fmt::Header) - 4);
  std::memcpy(bytes.data() + sizeof(fmt::Header) - 4, &crc, sizeof crc);
}

/// Recomputes one section's footer CRC entry (plus the footer CRC) after a
/// deliberate payload edit, so the loader reaches the semantic check under
/// test instead of stopping at the CRC mismatch.
void refresh_section_crc(std::vector<char>& bytes, std::uint32_t id) {
  fmt::Header h;
  std::memcpy(&h, bytes.data(), sizeof h);
  const fmt::FileLayout layout =
      fmt::FileLayout::compute(h.num_nodes, h.num_edges, h.flags);
  for (std::size_t i = 0; i < layout.sections.size(); ++i) {
    const fmt::SectionLayout& s = layout.sections[i];
    if (s.id != id) continue;
    const std::uint32_t crc = util::crc32(bytes.data() + s.offset,
                                          static_cast<std::size_t>(s.length));
    std::memcpy(
        bytes.data() + h.footer_offset + i * sizeof(fmt::SectionEntry) + 4,
        &crc, sizeof crc);
    refresh_footer_crc(bytes);
    return;
  }
  FAIL() << "section " << id << " absent from the layout";
}

TEST(InstanceFormatTest, LayoutIsPureFunctionOfShape) {
  const fmt::FileLayout layout =
      fmt::FileLayout::compute(100, 400, fmt::kFlagPackTables);
  EXPECT_EQ(layout.sections.size(), 13u);  // 9 base + 4 pack, no q columns
  for (const fmt::SectionLayout& s : layout.sections) {
    EXPECT_EQ(s.offset % fmt::kSectionAlign, 0u) << "section " << s.id;
  }
  EXPECT_EQ(layout.file_size, layout.footer_offset + layout.footer_length);
  // Unknown flag bits and oversize shapes are rejected up front.
  EXPECT_THROW(fmt::FileLayout::compute(10, 10, 1ull << 7), InvalidArgument);
  EXPECT_THROW(fmt::FileLayout::compute(0xFFFFFFFFull, 0, 0),
               InvalidArgument);
  EXPECT_THROW(fmt::FileLayout::compute(10, 1ull << 31, 0), InvalidArgument);
}

TEST(InstanceFormatTest, TextBinaryTextIsByteIdentical) {
  const AccuInstance original = small_instance(1);
  const std::string bin = testing::TempDir() + "fmt_roundtrip.accui";
  write_instance_binary_file(original, bin);
  const AccuInstance loaded = read_instance_binary_file(bin);
  EXPECT_EQ(text_of(loaded), text_of(original));
}

TEST(InstanceFormatTest, BinaryWriteIsDeterministicAndStable) {
  const AccuInstance original = small_instance(2);
  const std::string a = testing::TempDir() + "fmt_stable_a.accui";
  const std::string b = testing::TempDir() + "fmt_stable_b.accui";
  write_instance_binary_file(original, a);
  // binary -> load -> binary must reproduce the same bytes (flags, layout
  // and every payload included).
  write_instance_binary_file(read_instance_binary_file(a), b);
  EXPECT_EQ(read_bytes(a), read_bytes(b));
}

TEST(InstanceFormatTest, GeneralizedModelRoundTrips) {
  const AccuInstance original = small_instance(3, 0.125, 0.875);
  ASSERT_TRUE(original.has_generalized_cautious());
  const std::string bin = testing::TempDir() + "fmt_generalized.accui";
  write_instance_binary_file(original, bin);
  const AccuInstance loaded = read_instance_binary_file(bin);
  EXPECT_TRUE(loaded.has_generalized_cautious());
  EXPECT_EQ(text_of(loaded), text_of(original));
}

TEST(InstanceFormatTest, PackTableAdoptionIsBitIdentical) {
  const AccuInstance original = small_instance(4);
  const std::string bin = testing::TempDir() + "fmt_adopt.accui";
  write_instance_binary_file(original, bin, /*with_pack_tables=*/true);
  const AccuInstance loaded = read_instance_binary_file(bin);
  ASSERT_NE(loaded.pack_tables(), nullptr);

  ScorePack recomputed;
  recomputed.build(original);  // per-slot walk, no tables attached
  ScorePack adopted;
  adopted.build(loaded);  // memcpy from the mapped sections
  ASSERT_EQ(adopted.num_slots(), recomputed.num_slots());
  const std::size_t slots = adopted.num_slots();
  EXPECT_EQ(std::memcmp(adopted.mirror_all().data(),
                        recomputed.mirror_all().data(),
                        slots * sizeof(std::uint32_t)),
            0);
  EXPECT_EQ(std::memcmp(adopted.d_init_all().data(),
                        recomputed.d_init_all().data(),
                        slots * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(adopted.i_gain_all().data(),
                        recomputed.i_gain_all().data(),
                        slots * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(adopted.slot_theta_all().data(),
                        recomputed.slot_theta_all().data(),
                        slots * sizeof(std::uint32_t)),
            0);
  EXPECT_EQ(std::memcmp(adopted.slot_nodes_all().data(),
                        recomputed.slot_nodes_all().data(),
                        slots * sizeof(NodeId)),
            0);
}

TEST(InstanceFormatTest, TamperedPackTablesAreRejected) {
  // CRC-*consistent* tampering: the payload edit and the footer CRCs agree,
  // so only the loader's semantic pass over the adopted tables can catch
  // it.  Each case is an invariant the engine relies on for memory safety
  // or finite arithmetic.
  const AccuInstance original = small_instance(10);
  const std::string bin = testing::TempDir() + "fmt_pack_tamper.accui";
  write_instance_binary_file(original, bin, /*with_pack_tables=*/true);
  const std::vector<char> pristine = read_bytes(bin);
  fmt::Header h;
  std::memcpy(&h, pristine.data(), sizeof h);
  ASSERT_NE(h.flags & fmt::kFlagPackTables, 0u);
  const fmt::FileLayout layout =
      fmt::FileLayout::compute(h.num_nodes, h.num_edges, h.flags);
  const auto offset_of = [&](std::uint32_t id) -> std::size_t {
    for (const fmt::SectionLayout& s : layout.sections) {
      if (s.id == id) return static_cast<std::size_t>(s.offset);
    }
    throw std::logic_error("section missing");
  };

  const auto expect_rejected = [&](std::vector<char> bytes, std::uint32_t id,
                                   const std::string& needle) {
    refresh_section_crc(bytes, id);
    write_bytes(bin, bytes);
    try {
      (void)read_instance_binary_file(bin);
      FAIL() << "expected IoError mentioning '" << needle << "'";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  {  // mirror index past the slot space: would drive OOB contrib writes
    std::vector<char> bytes = pristine;
    const std::uint32_t oob = 0x7FFFFFF0u;
    std::memcpy(bytes.data() + offset_of(fmt::kMirror), &oob, 4);
    expect_rejected(std::move(bytes), fmt::kMirror, "mirror");
  }
  {  // in-range self-link: still not the twin slot of its edge
    std::vector<char> bytes = pristine;
    const std::uint32_t self = 0;
    std::memcpy(bytes.data() + offset_of(fmt::kMirror), &self, 4);
    expect_rejected(std::move(bytes), fmt::kMirror, "mirror");
  }
  {  // slot_theta = 0 would put 1/0 into the engine's blank contributions
    std::vector<char> bytes = pristine;
    const std::uint32_t zero = 0;
    std::memcpy(bytes.data() + offset_of(fmt::kSlotTheta), &zero, 4);
    expect_rejected(std::move(bytes), fmt::kSlotTheta, "slot_theta");
  }
  {  // nonzero i_gain on a reckless-neighbor slot breaks the P_I gathers
    const auto adj = original.graph().raw_adjacency();
    std::size_t s = 0;
    while (s < adj.size() && original.is_cautious(adj[s].node)) ++s;
    ASSERT_LT(s, adj.size());
    std::vector<char> bytes = pristine;
    const double one = 1.0;
    std::memcpy(bytes.data() + offset_of(fmt::kIGain) + s * 8, &one, 8);
    expect_rejected(std::move(bytes), fmt::kIGain, "i_gain");
  }
  {  // non-finite d_init
    std::vector<char> bytes = pristine;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(bytes.data() + offset_of(fmt::kDInit), &nan, 8);
    expect_rejected(std::move(bytes), fmt::kDInit, "d_init");
  }

  // Restored, the file loads and matches — the tampering matrix is sound.
  write_bytes(bin, pristine);
  EXPECT_EQ(text_of(read_instance_binary_file(bin)), text_of(original));
}

TEST(InstanceFormatTest, SimulationTraceIdenticalAcrossFormats) {
  const AccuInstance original = small_instance(5);
  const std::string bin = testing::TempDir() + "fmt_sim.accui";
  write_instance_binary_file(original, bin);
  const AccuInstance loaded = read_instance_binary_file(bin);

  const auto run = [](const AccuInstance& instance) {
    util::Rng rng(11);
    const Realization truth = Realization::sample(instance, rng);
    AbmStrategy strategy(0.5, 0.5);
    util::Rng srng(7);
    return simulate(instance, truth, strategy, 60, srng);
  };
  const SimulationResult a = run(original);
  const SimulationResult b = run(loaded);
  EXPECT_EQ(a.total_benefit, b.total_benefit);  // bitwise, not approximate
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target) << "request " << i;
  }
}

TEST(InstanceFormatTest, AutoDetectionSniffsTheMagic) {
  const AccuInstance original = small_instance(6);
  const std::string text = testing::TempDir() + "fmt_auto.accu";
  const std::string bin = testing::TempDir() + "fmt_auto.accui";
  write_instance_file(original, text);
  write_instance_binary_file(original, bin);
  EXPECT_FALSE(is_binary_instance_file(text));
  EXPECT_TRUE(is_binary_instance_file(bin));
  EXPECT_EQ(text_of(load_instance_auto(text)), text_of(original));
  EXPECT_EQ(text_of(load_instance_auto(bin)), text_of(original));
  // Forcing the wrong format fails cleanly instead of misparsing.
  EXPECT_THROW(
      (InstanceSource{bin, InstanceSource::Format::kText}.load()), IoError);
  EXPECT_THROW(
      (InstanceSource{text, InstanceSource::Format::kBinary}.load()),
      IoError);
  EXPECT_THROW(is_binary_instance_file(testing::TempDir() + "fmt_none"),
               IoError);
}

TEST(InstanceFormatTest, CorruptionInEverySectionIsDetected) {
  const AccuInstance original = small_instance(7, 0.25, 0.75);
  const std::string bin = testing::TempDir() + "fmt_corrupt.accui";
  write_instance_binary_file(original, bin);
  const std::vector<char> pristine = read_bytes(bin);

  fmt::Header h;
  std::memcpy(&h, pristine.data(), sizeof h);
  const fmt::FileLayout layout =
      fmt::FileLayout::compute(h.num_nodes, h.num_edges, h.flags);
  ASSERT_EQ(layout.sections.size(), h.section_count);

  for (const fmt::SectionLayout& s : layout.sections) {
    ASSERT_GT(s.length, 0u) << "section " << s.id;
    std::vector<char> bytes = pristine;
    bytes[s.offset + s.length / 2] ^= 0x40;  // one bit, mid-payload
    write_bytes(bin, bytes);
    EXPECT_THROW(read_instance_binary_file(bin), IoError)
        << "bit flip in section " << s.id << " went undetected";
  }
  // The file still loads once restored — the matrix itself is sound.
  write_bytes(bin, pristine);
  EXPECT_EQ(text_of(read_instance_binary_file(bin)), text_of(original));
}

TEST(InstanceFormatTest, HeaderAndFooterCorruptionIsDetected) {
  const AccuInstance original = small_instance(8);
  const std::string bin = testing::TempDir() + "fmt_header.accui";
  write_instance_binary_file(original, bin);
  const std::vector<char> pristine = read_bytes(bin);
  fmt::Header h;
  std::memcpy(&h, pristine.data(), sizeof h);

  const auto expect_rejected = [&](std::vector<char> bytes,
                                   const std::string& needle) {
    write_bytes(bin, bytes);
    try {
      (void)read_instance_binary_file(bin);
      FAIL() << "expected IoError mentioning '" << needle << "'";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  {  // wrong magic
    std::vector<char> bytes = pristine;
    bytes[0] = 'X';
    expect_rejected(bytes, "magic");
  }
  {  // future version, CRC made consistent so the version check fires
    std::vector<char> bytes = pristine;
    const std::uint32_t v2 = 2;
    std::memcpy(bytes.data() + 8, &v2, sizeof v2);
    refresh_header_crc(bytes);
    expect_rejected(bytes, "version");
  }
  {  // foreign endianness
    std::vector<char> bytes = pristine;
    const std::uint32_t swapped = 0x0D0C0B0Au;
    std::memcpy(bytes.data() + 12, &swapped, sizeof swapped);
    refresh_header_crc(bytes);
    expect_rejected(bytes, "endian");
  }
  {  // unknown flag bit: a newer writer's file must not half-load
    std::vector<char> bytes = pristine;
    std::uint64_t flags = h.flags | (1ull << 5);
    std::memcpy(bytes.data() + 32, &flags, sizeof flags);
    refresh_header_crc(bytes);
    expect_rejected(bytes, "flag");
  }
  {  // plain header bit rot
    std::vector<char> bytes = pristine;
    bytes[20] ^= 0x01;  // inside num_nodes
    expect_rejected(bytes, "CRC");
  }
  {  // footer entry bit rot
    std::vector<char> bytes = pristine;
    bytes[static_cast<std::size_t>(h.footer_offset) + 8] ^= 0x01;
    expect_rejected(bytes, "footer");
  }
  {  // reserved footer field must stay zero in v1
    std::vector<char> bytes = pristine;
    bytes[static_cast<std::size_t>(h.footer_offset) + 24] = 1;
    refresh_footer_crc(bytes);
    expect_rejected(bytes, "footer entry");
  }
  {  // misaligned/shifted section offset
    std::vector<char> bytes = pristine;
    std::uint64_t offset;
    std::memcpy(&offset, bytes.data() + h.footer_offset + 8, sizeof offset);
    offset += fmt::kSectionAlign;
    std::memcpy(bytes.data() + h.footer_offset + 8, &offset, sizeof offset);
    refresh_footer_crc(bytes);
    expect_rejected(bytes, "footer entry");
  }
}

TEST(InstanceFormatTest, TornAndOversizedFilesAreDetected) {
  const AccuInstance original = small_instance(9);
  const std::string bin = testing::TempDir() + "fmt_torn.accui";
  write_instance_binary_file(original, bin);
  const std::vector<char> pristine = read_bytes(bin);

  const auto expect_torn = [&](std::size_t keep) {
    std::vector<char> bytes(pristine.begin(),
                            pristine.begin() + static_cast<long>(keep));
    write_bytes(bin, bytes);
    EXPECT_THROW(read_instance_binary_file(bin), IoError)
        << "torn at " << keep << " of " << pristine.size();
  };
  expect_torn(pristine.size() - 1);  // one byte short of the footer
  expect_torn(pristine.size() / 2);  // mid-section
  expect_torn(sizeof(fmt::Header));  // header only
  expect_torn(10);                   // shorter than the header

  std::vector<char> grown = pristine;
  grown.push_back('\0');
  write_bytes(bin, grown);
  EXPECT_THROW(read_instance_binary_file(bin), IoError);
}

TEST(InstanceFormatTest, WriterEnforcesTheSectionProtocol) {
  const std::string path = testing::TempDir() + "fmt_protocol.accui";
  {  // wrong section order
    BinaryInstanceWriter w;
    w.open(path, 4, 0, 0);
    EXPECT_THROW(w.begin_section(fmt::kAdjacency), InvalidArgument);
    w.abort();
  }
  {  // overlong section payload
    BinaryInstanceWriter w;
    w.open(path, 4, 0, 0);
    w.begin_section(fmt::kOffsets);
    std::vector<std::uint64_t> offsets(6, 0);  // one u64 too many
    EXPECT_THROW(w.write(offsets.data(), offsets.size() * 8),
                 InvalidArgument);
    w.abort();
  }
  {  // short section payload
    BinaryInstanceWriter w;
    w.open(path, 4, 0, 0);
    w.begin_section(fmt::kOffsets);
    const std::uint64_t zero = 0;
    w.write(&zero, sizeof zero);
    EXPECT_THROW(w.end_section(), InvalidArgument);
    w.abort();
  }
  {  // commit before all sections are written
    BinaryInstanceWriter w;
    w.open(path, 4, 0, 0);
    EXPECT_THROW(w.commit(), InvalidArgument);
    w.abort();
  }
  // No torn file ever reached the target path.
  EXPECT_THROW(read_instance_binary_file(path), IoError);
}

TEST(InstanceFormatTest, StreamGenIsIndependentOfBatchSize) {
  datasets::StreamGenConfig config;
  config.num_nodes = 4000;
  config.avg_degree = 12.0;
  config.num_cautious = 40;
  config.seed = 13;
  const std::string a = testing::TempDir() + "fmt_gen_a.accui";
  const std::string b = testing::TempDir() + "fmt_gen_b.accui";
  config.batch_bytes = 1;  // floored to 64 KiB — many scatter passes
  const datasets::StreamGenStats stats_a =
      datasets::generate_instance_stream(config, a);
  config.batch_bytes = 1ull << 30;  // everything in one pass
  const datasets::StreamGenStats stats_b =
      datasets::generate_instance_stream(config, b);
  EXPECT_GT(stats_a.spool_scans, stats_b.spool_scans);
  EXPECT_EQ(read_bytes(a), read_bytes(b));
}

TEST(InstanceFormatTest, StreamGenOutputIsAValidAdoptableInstance) {
  datasets::StreamGenConfig config;
  config.num_nodes = 3000;
  config.avg_degree = 10.0;
  config.num_cautious = 25;
  config.seed = 17;
  const std::string path = testing::TempDir() + "fmt_gen_valid.accui";
  const datasets::StreamGenStats stats =
      datasets::generate_instance_stream(config, path);
  EXPECT_EQ(stats.num_nodes, config.num_nodes);
  EXPECT_EQ(stats.num_cautious, config.num_cautious);

  // The loader re-runs Graph::from_csr and the instance constructor, so a
  // successful load certifies the streamed CSR and the paper invariants.
  const AccuInstance instance = read_instance_binary_file(path);
  EXPECT_EQ(instance.num_nodes(), config.num_nodes);
  EXPECT_EQ(instance.num_cautious(), config.num_cautious);
  ASSERT_NE(instance.pack_tables(), nullptr);

  // The generator's cursor-simulated slot tables must equal a from-scratch
  // ScorePack build on the same instance, bit for bit.
  ScorePack adopted;
  adopted.build(instance);
  AccuInstance stripped = instance;
  stripped.attach_pack_tables(nullptr);
  ScorePack recomputed;
  recomputed.build(stripped);
  ASSERT_EQ(adopted.num_slots(), recomputed.num_slots());
  const std::size_t slots = adopted.num_slots();
  EXPECT_EQ(std::memcmp(adopted.mirror_all().data(),
                        recomputed.mirror_all().data(),
                        slots * sizeof(std::uint32_t)),
            0);
  EXPECT_EQ(std::memcmp(adopted.d_init_all().data(),
                        recomputed.d_init_all().data(),
                        slots * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(adopted.i_gain_all().data(),
                        recomputed.i_gain_all().data(),
                        slots * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(adopted.slot_theta_all().data(),
                        recomputed.slot_theta_all().data(),
                        slots * sizeof(std::uint32_t)),
            0);

  // And the instance actually drives an attack.
  util::Rng rng(1);
  const Realization truth = Realization::sample(instance, rng);
  AbmStrategy strategy(0.5, 0.5);
  util::Rng srng(2);
  const SimulationResult result = simulate(instance, truth, strategy, 30, srng);
  EXPECT_EQ(result.trace.size(), 30u);
}

TEST(InstanceFormatTest, StreamGenWithoutPackTables) {
  datasets::StreamGenConfig config;
  config.num_nodes = 1000;
  config.num_cautious = 10;
  config.pack_tables = false;
  const std::string path = testing::TempDir() + "fmt_gen_nopack.accui";
  (void)datasets::generate_instance_stream(config, path);
  const AccuInstance instance = read_instance_binary_file(path);
  EXPECT_EQ(instance.pack_tables(), nullptr);
  ScorePack pack;
  pack.build(instance);  // recompute path still works
  EXPECT_EQ(pack.num_slots(), 2u * instance.graph().num_edges());
}

TEST(InstanceFormatTest, StreamGenRejectsBadConfigs) {
  datasets::StreamGenConfig config;
  config.alpha = 1.0;  // tail exponent out of (2, 8]
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.num_nodes = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.cautious_degree_min = 50;
  config.cautious_degree_max = 10;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

#ifdef ACCU_HAVE_POSIX_IO

TEST(InstanceFormatTest, EnospcDuringPackLeavesThePreviousFileIntact) {
  const std::string path = testing::TempDir() + "fmt_enospc.accui";
  const AccuInstance first = small_instance(20);
  write_instance_binary_file(first, path);
  const std::vector<char> before = read_bytes(path);
  {
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.disk_budget(200);  // the replacement tears off mid-section
    EXPECT_THROW(write_instance_binary_file(small_instance(21), path),
                 DiskFullError);
    faulty.materialize_crash_state();
  }
  EXPECT_EQ(read_bytes(path), before);
  EXPECT_EQ(text_of(read_instance_binary_file(path)), text_of(first));
}

TEST(InstanceFormatTest, FsyncFailureDuringPackSurfacesAsSyncLost) {
  const std::string path = testing::TempDir() + "fmt_sync.accui";
  const AccuInstance first = small_instance(22);
  write_instance_binary_file(first, path);
  const std::vector<char> before = read_bytes(path);
  {
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.fail_fsync(faulty.sync_count() + 1);
    EXPECT_THROW(write_instance_binary_file(small_instance(23), path),
                 SyncFailedError);
    faulty.materialize_crash_state();
  }
  EXPECT_EQ(read_bytes(path), before);
}

TEST(InstanceFormatTest, EnospcDuringStreamGenLeavesNoTarget) {
  const std::string path = testing::TempDir() + "fmt_gen_enospc.accui";
  datasets::StreamGenConfig config;
  config.num_nodes = 2000;
  config.num_cautious = 10;
  util::FaultyFs faulty;
  util::ScopedIoEnv scoped(faulty);
  faulty.disk_budget(4096);  // enough for the spool to start, not finish
  EXPECT_THROW(datasets::generate_instance_stream(config, path),
               DiskFullError);
  faulty.materialize_crash_state();
  EXPECT_FALSE(std::ifstream(path, std::ios::binary).good());
}

#endif  // ACCU_HAVE_POSIX_IO

}  // namespace
}  // namespace accu
