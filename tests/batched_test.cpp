// Tests for BatchedAbmStrategy: batch-boundary semantics, equivalence with
// sequential ABM at batch size 1, degenerate full-plan behaviour, and round
// accounting.

#include <gtest/gtest.h>

#include "core/strategies/abm.hpp"
#include "core/strategies/batched.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

AccuInstance random_instance(std::uint64_t seed, NodeId n = 60) {
  util::Rng rng(seed);
  graph::GraphBuilder b = graph::barabasi_albert(n, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(n, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(n, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 5; v < n && cautious.size() < 5; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(n);
  for (auto& x : q) x = 0.2 + 0.8 * rng.uniform();
  return AccuInstance(g, classes, q, thresholds,
                      BenefitModel::paper_default(classes));
}

TEST(BatchedAbmTest, RejectsBadParameters) {
  EXPECT_THROW(BatchedAbmStrategy({0.5, 0.5}, 0), InvalidArgument);
  EXPECT_THROW(BatchedAbmStrategy({-1.0, 0.5}, 2), InvalidArgument);
}

TEST(BatchedAbmTest, NameEncodesBatchSize) {
  EXPECT_EQ(BatchedAbmStrategy({0.5, 0.5}, 7).name(), "BatchedABM(b=7)");
}

class BatchedSeedTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedSeedTest, BatchSizeOneMatchesSequentialAbm) {
  const AccuInstance instance = random_instance(GetParam());
  util::Rng rng(GetParam() + 100);
  const Realization truth = Realization::sample(instance, rng);
  AbmStrategy sequential(0.5, 0.5);
  BatchedAbmStrategy batched({0.5, 0.5}, 1);
  util::Rng ra(1), rb(1);
  const SimulationResult a = simulate(instance, truth, sequential, 25, ra);
  const SimulationResult b = simulate(instance, truth, batched, 25, rb);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target) << "request " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_benefit, b.total_benefit);
}

TEST_P(BatchedSeedTest, HugeBatchIsNonAdaptivePlan) {
  // With batch >= budget the whole attack is planned from the empty view:
  // the targets must be exactly the top-k by initial potential, in order.
  const AccuInstance instance = random_instance(GetParam());
  util::Rng rng(GetParam() + 200);
  const Realization truth = Realization::sample(instance, rng);
  const std::uint32_t k = 15;
  BatchedAbmStrategy batched({0.5, 0.5}, 1000);
  util::Rng rb(1);
  const SimulationResult result = simulate(instance, truth, batched, k, rb);

  // Rank all users by initial potential (ties to smaller id).
  const AttackerView fresh(instance);
  const AbmStrategy scorer(0.5, 0.5);
  std::vector<std::pair<double, NodeId>> scored;
  for (NodeId u = 0; u < instance.num_nodes(); ++u) {
    scored.emplace_back(scorer.potential(fresh, u), u);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  ASSERT_EQ(result.trace.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(result.trace[i].target, scored[i].second) << "request " << i;
  }
}

TEST_P(BatchedSeedTest, MidBatchObservationsAreIgnored) {
  // The 2nd..bth targets of a batch must not depend on the realization:
  // run the same strategy against two different ground truths and check
  // the first batch is identical.
  const AccuInstance instance = random_instance(GetParam());
  util::Rng rng1(GetParam() + 300), rng2(GetParam() + 400);
  const Realization t1 = Realization::sample(instance, rng1);
  const Realization t2 = Realization::sample(instance, rng2);
  const std::uint32_t batch = 8;
  BatchedAbmStrategy s1({0.5, 0.5}, batch), s2({0.5, 0.5}, batch);
  util::Rng ra(1), rb(1);
  const SimulationResult a = simulate(instance, t1, s1, batch, ra);
  const SimulationResult b = simulate(instance, t2, s2, batch, rb);
  ASSERT_EQ(a.trace.size(), batch);
  ASSERT_EQ(b.trace.size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target) << "request " << i;
  }
}

TEST_P(BatchedSeedTest, RoundsAreCeilOfBudgetOverBatch) {
  const AccuInstance instance = random_instance(GetParam());
  util::Rng rng(GetParam() + 500);
  const Realization truth = Realization::sample(instance, rng);
  BatchedAbmStrategy batched({0.5, 0.5}, 10);
  util::Rng rb(1);
  const SimulationResult result = simulate(instance, truth, batched, 25, rb);
  EXPECT_EQ(result.trace.size(), 25u);
  EXPECT_EQ(batched.rounds(), 3u);  // 10 + 10 + 5
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedSeedTest,
                         testing::Values(81u, 82u, 83u, 84u));

TEST(BatchedAbmTest, ExhaustsCandidates) {
  const AccuInstance instance = random_instance(91, 12);
  const Realization truth = Realization::certain(instance);
  BatchedAbmStrategy batched({0.5, 0.5}, 5);
  util::Rng rng(1);
  const SimulationResult result =
      simulate(instance, truth, batched, 100, rng);
  EXPECT_EQ(result.trace.size(), 12u);
}

}  // namespace
}  // namespace accu
