// Tests for the one-step lookahead planner: parameter validation, the
// constructed scenario where planning beats myopic greedy, beam behaviour
// and determinism under a fixed rng stream.

#include <gtest/gtest.h>

#include "core/strategies/abm.hpp"
#include "core/strategies/lookahead.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// The planning trap: a decoy with the best myopic score (B_f = 3.5) vs a
/// gateway n1 whose acceptance unlocks a cautious prize (θ = 1, B_f = 50).
/// Myopic greedy spends its 2-request budget on decoy + gateway (6.5);
/// lookahead takes gateway + prize (52).
AccuInstance trap_instance() {
  graph::GraphBuilder b(4);
  // 0 = decoy (isolated), 1 = gateway, 2 = cautious prize, 3 = filler leaf.
  b.add_edge(1, 2, 1.0);
  b.add_edge(1, 3, 0.0);  // never exists: keeps the gateway's P_D at 3
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  const BenefitModel benefits({3.5, 2.0, 50.0, 2.0}, {1.0, 1.0, 1.0, 1.0});
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 1, 1},
                      benefits);
}

TEST(LookaheadTest, RejectsBadConfig) {
  LookaheadStrategy::Config config;
  config.beam = 0;
  EXPECT_THROW(LookaheadStrategy{config}, InvalidArgument);
  config.beam = 2;
  config.scenario_samples = 0;
  EXPECT_THROW(LookaheadStrategy{config}, InvalidArgument);
  config.scenario_samples = 1;
  config.weights = {-1.0, 0.0};
  EXPECT_THROW(LookaheadStrategy{config}, InvalidArgument);
}

TEST(LookaheadTest, NameEncodesConfig) {
  EXPECT_EQ(LookaheadStrategy{}.name(), "Lookahead(beam=8,samples=4)");
}

TEST(LookaheadTest, EscapesTheMyopicTrap) {
  const AccuInstance instance = trap_instance();
  // Edge (1,2) exists, the probability-0 edge (1,3) does not.
  const Realization truth({true, false}, std::vector<bool>(4, true));

  AbmStrategy greedy = make_classic_greedy();
  util::Rng rg(1);
  const SimulationResult myopic = simulate(instance, truth, greedy, 2, rg);
  EXPECT_EQ(myopic.trace[0].target, 0u);  // decoy first
  EXPECT_DOUBLE_EQ(myopic.total_benefit, 6.5);

  LookaheadStrategy planner;
  util::Rng rl(1);
  const SimulationResult planned =
      simulate(instance, truth, planner, 2, rl);
  EXPECT_EQ(planned.trace[0].target, 1u);  // gateway first
  EXPECT_EQ(planned.trace[1].target, 2u);  // prize second
  EXPECT_DOUBLE_EQ(planned.total_benefit, 52.0);
}

TEST(LookaheadTest, BeamOneIsMyopic) {
  // With beam 1 only the top myopic candidate gets (useless) lookahead, so
  // the choice sequence equals greedy's.
  const AccuInstance instance = trap_instance();
  const Realization truth({true, false}, std::vector<bool>(4, true));
  LookaheadStrategy::Config config;
  config.beam = 1;
  LookaheadStrategy narrow(config);
  AbmStrategy greedy = make_classic_greedy();
  util::Rng r1(1), r2(1);
  const SimulationResult a = simulate(instance, truth, narrow, 3, r1);
  const SimulationResult b = simulate(instance, truth, greedy, 3, r2);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target);
  }
}

TEST(LookaheadTest, DeterministicGivenRngStream) {
  util::Rng rng(7);
  graph::GraphBuilder b = graph::barabasi_albert(40, 3, rng);
  b.assign_uniform_probs(rng);
  std::vector<double> q(40);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(b.build(), std::vector<UserClass>(40), q,
                              std::vector<std::uint32_t>(40, 1),
                              BenefitModel::uniform(40, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  LookaheadStrategy p1, p2;
  util::Rng r1(3), r2(3);
  const SimulationResult a = simulate(instance, truth, p1, 12, r1);
  const SimulationResult c = simulate(instance, truth, p2, 12, r2);
  ASSERT_EQ(a.trace.size(), c.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, c.trace[i].target);
  }
}

TEST(LookaheadTest, HandlesExhaustion) {
  const AccuInstance instance = trap_instance();
  const Realization truth = Realization::certain(instance);
  LookaheadStrategy planner;
  util::Rng rng(2);
  const SimulationResult result =
      simulate(instance, truth, planner, 100, rng);
  EXPECT_EQ(result.trace.size(), 4u);
}

}  // namespace
}  // namespace accu
