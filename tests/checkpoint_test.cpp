// Tests for the experiment checkpoint: a killed-and-resumed sweep must
// reproduce the uninterrupted aggregates exactly (bit-identical), a
// truncated trailing block is discarded rather than corrupting the resume,
// and a checkpoint from a different experiment is rejected.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"

namespace accu {
namespace {

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.budget = 20;
  config.samples = 2;
  config.runs = 3;
  config.seed = 31;
  config.faults = FaultConfig::uniform(0.2);
  config.retry = util::RetryPolicy::exponential_jitter(2);
  return config;
}

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

/// Exact equality of every aggregate the harness produces — the resume
/// guarantee is bit-identity, not closeness.
void expect_identical_results(const ExperimentResult& a,
                              const ExperimentResult& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  for (std::size_t s = 0; s < a.aggregates.size(); ++s) {
    const TraceAggregator& x = a.aggregates[s];
    const TraceAggregator& y = b.aggregates[s];
    SCOPED_TRACE(a.strategy_names[s]);
    EXPECT_EQ(x.total_benefit().count(), y.total_benefit().count());
    EXPECT_EQ(x.total_benefit().mean(), y.total_benefit().mean());
    EXPECT_EQ(x.total_benefit().variance(), y.total_benefit().variance());
    EXPECT_EQ(x.cautious_friends().mean(), y.cautious_friends().mean());
    EXPECT_EQ(x.accepted_requests().mean(), y.accepted_requests().mean());
    EXPECT_EQ(x.faulted_requests().mean(), y.faulted_requests().mean());
    EXPECT_EQ(x.retries().mean(), y.retries().mean());
    EXPECT_EQ(x.suspended_rounds().mean(), y.suspended_rounds().mean());
    EXPECT_EQ(x.abandoned_targets().mean(), y.abandoned_targets().mean());
    ASSERT_EQ(x.cumulative_benefit().length(),
              y.cumulative_benefit().length());
    for (std::size_t i = 0; i < x.cumulative_benefit().length(); ++i) {
      EXPECT_EQ(x.cumulative_benefit().at(i).mean(),
                y.cumulative_benefit().at(i).mean())
          << "index " << i;
      EXPECT_EQ(x.marginal().at(i).mean(), y.marginal().at(i).mean());
      EXPECT_EQ(x.marginal_cautious().at(i).mean(),
                y.marginal_cautious().at(i).mean());
      EXPECT_EQ(x.cautious_fraction().at(i).mean(),
                y.cautious_fraction().at(i).mean());
    }
  }
}

TEST(CheckpointTest, FullCheckpointReloadsBitIdentically) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_full.txt");
  const ExperimentResult first =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, first);

  // Second invocation restores every cell from the file; simulations never
  // re-run, aggregates must not drift by a single bit.
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

TEST(CheckpointTest, PartialCheckpointResumesExactly) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  // Simulate a kill: keep the header and the first two completed blocks.
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_partial.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  const std::string full = read_file(with_checkpoint.checkpoint_path);
  std::size_t cut = full.find("\nend ");
  ASSERT_NE(cut, std::string::npos);
  cut = full.find("\nend ", cut + 1);
  ASSERT_NE(cut, std::string::npos);
  cut = full.find('\n', cut + 1);  // end of the second `end` line
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream os(with_checkpoint.checkpoint_path, std::ios::trunc);
    os << full.substr(0, cut + 1);
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

TEST(CheckpointTest, TruncatedTrailingBlockIsDiscarded) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  // Kill mid-write: the last kept block loses its `end` line and half its
  // trace lines.
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_torn.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  const std::string full = read_file(with_checkpoint.checkpoint_path);
  const std::size_t first_end = full.find("\nend ");
  ASSERT_NE(first_end, std::string::npos);
  const std::size_t second_begin = full.find("begin ", first_end);
  ASSERT_NE(second_begin, std::string::npos);
  // Keep block 1 plus a torn prefix of block 2.
  const std::size_t tear = full.find("\nt ", second_begin);
  ASSERT_NE(tear, std::string::npos);
  {
    std::ofstream os(with_checkpoint.checkpoint_path, std::ios::trunc);
    os << full.substr(0, tear + 5);  // mid trace line
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

TEST(CheckpointTest, MismatchedExperimentIsRejected) {
  ExperimentConfig config = base_config();
  config.checkpoint_path = temp_path("accu_ckpt_mismatch.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), config);
  config.seed += 1;  // different experiment, same file
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
  config.seed -= 1;
  config.faults.drop_rate += 0.01;  // different fault layer
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
}

TEST(CheckpointTest, CheckpointFilesCarryVersionTwoCrcTrailers) {
  ExperimentConfig config = base_config();
  config.checkpoint_path = temp_path("accu_ckpt_v2_format.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), config);
  const std::string full = read_file(config.checkpoint_path);
  EXPECT_EQ(full.rfind("# accu-checkpoint v2", 0), 0u);
  // Every cell block ends with a `crc <task> <hex>` trailer.
  std::size_t begins = 0, crcs = 0, pos = 0;
  while ((pos = full.find("\nbegin ", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = full.find("\ncrc ", pos)) != std::string::npos) {
    ++crcs;
    ++pos;
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(config.samples) * config.runs);
  EXPECT_EQ(crcs, begins);
}

TEST(CheckpointTest, CorruptedCrcByteDropsTheTailAndResumesExactly) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  // Flip one hex digit in the *last* block's CRC trailer: the block no
  // longer verifies, so the loader must drop it (and only it) and the
  // resumed sweep re-runs that cell to the same bits.
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_crcflip.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  std::string full = read_file(with_checkpoint.checkpoint_path);
  const std::size_t last_crc = full.rfind("\ncrc ");
  ASSERT_NE(last_crc, std::string::npos);
  const std::size_t digit = full.find_last_not_of("\n");
  ASSERT_GT(digit, last_crc);
  full[digit] = full[digit] == '0' ? '1' : '0';
  {
    std::ofstream os(with_checkpoint.checkpoint_path, std::ios::trunc);
    os << full;
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

TEST(CheckpointTest, CorruptedTraceByteFailsTheCrcAndResumesExactly) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  // Corrupt a data byte inside the last block while keeping the line
  // parseable: without the CRC trailer this silent bit-rot would poison
  // the resumed aggregates.
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_bitrot.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  std::string full = read_file(with_checkpoint.checkpoint_path);
  const std::size_t last_begin = full.rfind("\nbegin ");
  ASSERT_NE(last_begin, std::string::npos);
  const std::size_t t_line = full.find("\nt ", last_begin);
  ASSERT_NE(t_line, std::string::npos);
  char& target_digit = full[t_line + 5];  // first digit of the target id
  ASSERT_TRUE(target_digit >= '0' && target_digit <= '9');
  target_digit = target_digit == '0' ? '1' : '0';
  {
    std::ofstream os(with_checkpoint.checkpoint_path, std::ios::trunc);
    os << full;
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

TEST(CheckpointTest, VersionOneFilesAreReadAndUpgraded) {
  const ExperimentConfig plain = base_config();
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);

  // Fabricate a v1 file from a v2 one: v1 is exactly the same format minus
  // the CRC trailers.  The loader must accept it, and resuming must
  // rewrite the file as v2 before appending (mixed v1/v2 bodies would be
  // unreadable).
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_v1.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  const std::string full = read_file(with_checkpoint.checkpoint_path);
  std::string v1 = "# accu-checkpoint v1\n";
  std::istringstream lines(full);
  std::string line;
  std::getline(lines, line);  // drop the v2 magic
  while (std::getline(lines, line)) {
    if (line.rfind("crc ", 0) == 0) continue;
    v1 += line;
    v1 += '\n';
  }
  {
    std::ofstream os(with_checkpoint.checkpoint_path, std::ios::trunc);
    os << v1;
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
  const std::string upgraded = read_file(with_checkpoint.checkpoint_path);
  EXPECT_EQ(upgraded.rfind("# accu-checkpoint v2", 0), 0u);
  EXPECT_NE(upgraded.find("\ncrc "), std::string::npos);
}

TEST(CheckpointTest, ReliablePlatformSweepAlsoCheckpoints) {
  // The checkpoint path is orthogonal to fault injection.
  ExperimentConfig plain;
  plain.budget = 15;
  plain.samples = 1;
  plain.runs = 4;
  plain.seed = 37;
  const ExperimentResult uninterrupted =
      run_experiment(tiny_factory(), two_strategies(), plain);
  ExperimentConfig with_checkpoint = plain;
  with_checkpoint.checkpoint_path = temp_path("accu_ckpt_reliable.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), with_checkpoint);
  expect_identical_results(uninterrupted, resumed);
}

}  // namespace
}  // namespace accu
