// Tests for the ABM policy: hand-computed potential values, the exact
// Δ(u|ω) = q(u)·P_D(u) identity behind Theorem 1, indirect-gain mechanics,
// incremental-vs-reference equivalence, and behavioural checks (threshold
// seeking with high w_I).

#include <gtest/gtest.h>

#include "core/strategies/abm.hpp"
#include "core/theory/exact.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Path 0 -(0.5)- 1 -(1.0)- 2 -(0.8)- 3 with cautious node 2 (θ=2),
/// q = {0.9, 0.5, ·, 0.7}; benefits: reckless 2/1, cautious 10/1.
AccuInstance chain_instance() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 0.8);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  const BenefitModel benefits({2.0, 2.0, 10.0, 2.0}, {1.0, 1.0, 1.0, 1.0});
  return AccuInstance(b.build(), classes, {0.9, 0.5, 0.0, 0.7}, {1, 1, 2, 1},
                      benefits);
}

TEST(AbmPotentialTest, HandComputedInitialValues) {
  const AccuInstance instance = chain_instance();
  const AttackerView view(instance);

  // q(u).
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 0), 0.9);
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 1), 0.5);
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 2), 0.0);

  // P_D: own friend benefit plus believed-new-FOF mass.
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 0), 2.0 + 0.5 * 1.0);
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 1),
                   2.0 + 0.5 * 1.0 + 1.0 * 1.0);
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 3), 2.0 + 0.8 * 1.0);

  // P_I: cautious neighbor 2 has θ−mutual = 2 and upgrade gain 9.
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 0), 0.0);
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 1), 1.0 * 9.0 / 2.0);
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 3), 0.8 * 9.0 / 2.0);
  // Cautious users have zero indirect gain by the model assumption.
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 2), 0.0);

  // Full potential with the paper's default weights.
  const AbmStrategy abm(0.5, 0.5);
  EXPECT_DOUBLE_EQ(abm.potential(view, 0), 0.9 * 0.5 * 2.5);
  EXPECT_DOUBLE_EQ(abm.potential(view, 1), 0.5 * (0.5 * 3.5 + 0.5 * 4.5));
  EXPECT_DOUBLE_EQ(abm.potential(view, 2), 0.0);
  EXPECT_DOUBLE_EQ(abm.potential(view, 3), 0.7 * (0.5 * 2.8 + 0.5 * 3.6));
}

TEST(AbmPotentialTest, ValuesAfterOneAcceptance) {
  const AccuInstance instance = chain_instance();
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  view.record_acceptance(3, truth);  // node 2 becomes FOF, mutual(2) = 1

  EXPECT_TRUE(view.is_fof(2));
  // P_D(1): neighbor 2 is now FOF, so only neighbor 0 contributes.
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 1), 2.0 + 0.5 * 1.0);
  // P_I(1): denominator shrank to 1 and the edge (1,2) belief is still 1.
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 1), 9.0);
  // Cautious 2 still below threshold.
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 2), 0.0);

  // After one more mutual friend the threshold indicator flips to 1 and
  // the direct gain counts the FOF-to-friend upgrade.
  view.record_acceptance(1, truth);
  EXPECT_DOUBLE_EQ(AbmStrategy::effective_accept_prob(view, 2), 1.0);
  // P_D(2) = B_f − B_fof (both neighbors are friends now).
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 2), 9.0);
}

TEST(AbmPotentialTest, RejectedCautiousNeighborHasNoIndirectValue) {
  const AccuInstance instance = chain_instance();
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  view.record_rejection(2);  // the cautious user was burned early
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 1), 0.0);
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 3), 0.0);
  (void)truth;
}

TEST(AbmPotentialTest, AbsentEdgeRemovesContribution) {
  const AccuInstance instance = chain_instance();
  // Edge (1,2) absent in truth; accepting 1 reveals it.
  std::vector<bool> edges{true, false, true};
  const Realization truth(edges, std::vector<bool>(4, true));
  AttackerView view(instance);
  view.record_acceptance(1, truth);
  // Node 3's indirect gain is unchanged (its edge to 2 is unobserved)…
  EXPECT_DOUBLE_EQ(AbmStrategy::indirect_gain(view, 3), 0.8 * 9.0 / 2.0);
  // …while node 0, whose edge to the new friend was revealed *present*, is
  // now FOF, and its only neighbor is a friend:
  // P_D(0) = B_f − B_fof = 1.
  EXPECT_TRUE(view.is_fof(0));
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 0), 1.0);
}

// Δ(u|ω) = q(u) · P_D(u|ω): ABM with w_D=1, w_I=0 is the exact adaptive
// greedy.  Verified against brute-force conditional expectation over the
// full realization enumeration, from several observation states.
class AbmDeltaIdentityTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AbmDeltaIdentityTest, PotentialEqualsExactMarginalGain) {
  util::Rng rng(GetParam());
  // Keep the enumeration small: at most 9 probabilistic edges and free
  // coins only on odd node ids (2^13 worlds max).
  graph::GraphBuilder b = graph::erdos_renyi(8, 0.3, rng);
  while (b.num_edges() > 9 || b.num_edges() < 4) {
    util::Rng retry(rng());
    b = graph::erdos_renyi(8, 0.3, retry);
  }
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(8, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(8, 1);
  for (NodeId v = 0; v < 8; ++v) {
    if (g.degree(v) >= 2) {
      classes[v] = UserClass::kCautious;
      thresholds[v] = 2;
      break;  // exactly one cautious user, guaranteed no C-C edge
    }
  }
  std::vector<double> q(8);
  for (NodeId v = 0; v < 8; ++v) {
    q[v] = (v % 2 == 1) ? rng.uniform() : 1.0;
  }
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(8, 2.0, 1.0));

  const auto worlds = enumerate_realizations(instance, 13);
  const Realization truth = Realization::sample(instance, rng);
  AttackerView view(instance);
  const AbmStrategy greedy = make_classic_greedy();

  for (int step = 0; step < 4; ++step) {
    for (NodeId u = 0; u < 8; ++u) {
      if (view.is_requested(u)) continue;
      const double exact = exact_marginal_gain(view, u, worlds);
      const double surrogate =
          AbmStrategy::effective_accept_prob(view, u) *
          AbmStrategy::direct_gain(view, u);
      ASSERT_NEAR(exact, surrogate, 1e-9) << "node " << u;
      ASSERT_NEAR(greedy.potential(view, u), surrogate, 1e-12);
    }
    // Advance the observation state along a random path.
    const auto target = static_cast<NodeId>(step * 2);
    if (view.is_requested(target)) continue;
    const bool accepted = instance.is_cautious(target)
                              ? view.cautious_would_accept(target)
                              : truth.reckless_accepts(target);
    if (accepted) {
      view.record_acceptance(target, truth);
    } else {
      view.record_rejection(target);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbmDeltaIdentityTest,
                         testing::Values(31u, 32u, 33u, 34u, 35u));

// Incremental heap maintenance must match the full-recompute reference
// choice for choice on full-length attacks.
class AbmIncrementalTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AbmIncrementalTest, MatchesReferenceTrace) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::barabasi_albert(80, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(80, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(80, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 10; v < 80 && cautious.size() < 8; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(80);
  for (auto& x : q) x = rng.uniform();
  const BenefitModel benefits = BenefitModel::paper_default(classes);
  const AccuInstance instance(g, classes, q, thresholds, benefits);
  const Realization truth = Realization::sample(instance, rng);

  AbmStrategy::Config fast;
  fast.weights = {0.5, 0.5};
  fast.incremental = true;
  AbmStrategy::Config slow = fast;
  slow.incremental = false;
  AbmStrategy a(fast), r(slow);
  util::Rng rng_a(1), rng_r(1);
  const SimulationResult ra = simulate(instance, truth, a, 40, rng_a);
  const SimulationResult rr = simulate(instance, truth, r, 40, rng_r);
  ASSERT_EQ(ra.trace.size(), rr.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    ASSERT_EQ(ra.trace[i].target, rr.trace[i].target) << "request " << i;
    ASSERT_EQ(ra.trace[i].accepted, rr.trace[i].accepted);
  }
  EXPECT_DOUBLE_EQ(ra.total_benefit, rr.total_benefit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbmIncrementalTest,
                         testing::Values(41u, 42u, 43u, 44u, 45u, 46u));

TEST(AbmBehaviourTest, FirstPickMaximizesPotential) {
  const AccuInstance instance = chain_instance();
  const Realization truth = Realization::certain(instance);
  AbmStrategy abm(0.5, 0.5);
  util::Rng rng(1);
  const SimulationResult result = simulate(instance, truth, abm, 3, rng);
  // Hand-computed potentials: node 3 (2.24) > node 1 (2.0) > node 0 (1.125).
  EXPECT_EQ(result.trace[0].target, 3u);
  // After 3 accepts: pot(1) = 0.5·(0.5·2.5 + 0.5·9) = 2.875 > pot(0).
  EXPECT_EQ(result.trace[1].target, 1u);
  // Now mutual(2) = 2 = θ: q flips to 1 and P_D(2) = 9 ⇒ pot(2) = 4.5
  // dominates node 0 (1.125).
  EXPECT_EQ(result.trace[2].target, 2u);
  EXPECT_TRUE(result.trace[2].accepted);
}

TEST(AbmBehaviourTest, PureGreedyIgnoresCautiousPull) {
  const AccuInstance instance = chain_instance();
  const Realization truth = Realization::certain(instance);
  AbmStrategy greedy = make_classic_greedy();
  util::Rng rng(2);
  const SimulationResult result = simulate(instance, truth, greedy, 1, rng);
  // Pure greedy ranks by q·P_D: node 1: 0.5·3.5 = 1.75 < node 0:
  // 0.9·2.5 = 2.25 > node 3: 0.7·2.8 = 1.96 ⇒ picks 0.
  EXPECT_EQ(result.trace[0].target, 0u);
}

TEST(AbmBehaviourTest, HighIndirectWeightBefriendsCautiousEarlier) {
  // Star of reckless users around a cautious hub requires threshold-seeking
  // to unlock the big prize; compare when the cautious user is befriended.
  graph::GraphBuilder b(8);
  for (NodeId v = 1; v < 8; ++v) b.add_edge(0, v, 1.0);
  std::vector<UserClass> classes(8, UserClass::kReckless);
  classes[0] = UserClass::kCautious;
  std::vector<double> q(8, 1.0);
  q[0] = 0.0;
  const BenefitModel benefits =
      BenefitModel::paper_default(classes, 2.0, 100.0, 1.0);
  const AccuInstance instance(b.build(), classes, q, {4, 1, 1, 1, 1, 1, 1, 1},
                              benefits);
  const Realization truth = Realization::certain(instance);

  auto first_cautious_request = [&](double w_i) {
    AbmStrategy abm(1.0 - w_i, w_i);
    util::Rng rng(3);
    const SimulationResult result =
        simulate(instance, truth, abm, 8, rng);
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      if (result.trace[i].cautious_target) return i;
    }
    return result.trace.size();
  };
  // θ = 4: the hub unlocks after 4 leaves; with any positive weights ABM
  // should eventually take it, and the pull is monotone in w_I here.
  const std::size_t with_indirect = first_cautious_request(0.5);
  EXPECT_EQ(with_indirect, 4u);  // immediately once unlocked
}

TEST(AbmBehaviourTest, WithoutCautiousUsersWeightsAreIrrelevant) {
  // Observation 1 territory: with V_C = ∅, P_I ≡ 0, so ABM(w_D, w_I) ranks
  // candidates by w_D·q·P_D — any positive w_D yields the greedy order.
  util::Rng rng(55);
  graph::GraphBuilder b = graph::barabasi_albert(60, 3, rng);
  b.assign_uniform_probs(rng);
  std::vector<double> q(60);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(b.build(), std::vector<UserClass>(60), q,
                              std::vector<std::uint32_t>(60, 1),
                              BenefitModel::uniform(60, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  AbmStrategy weighted(0.3, 0.7);
  AbmStrategy greedy = make_classic_greedy();
  util::Rng r1(1), r2(1);
  const SimulationResult a = simulate(instance, truth, weighted, 25, r1);
  const SimulationResult g2 = simulate(instance, truth, greedy, 25, r2);
  ASSERT_EQ(a.trace.size(), g2.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, g2.trace[i].target) << "request " << i;
  }
}

TEST(AbmBehaviourTest, NameEncodesWeights) {
  EXPECT_EQ(AbmStrategy(0.5, 0.5).name(), "ABM(wD=0.50,wI=0.50)");
  EXPECT_EQ(make_classic_greedy().name(), "ABM(wD=1.00,wI=0.00)");
}

TEST(AbmBehaviourTest, RejectsNegativeWeights) {
  EXPECT_THROW(AbmStrategy(-0.1, 0.5), InvalidArgument);
}

TEST(AbmBehaviourTest, ExhaustsCandidates) {
  const AccuInstance instance = chain_instance();
  const Realization truth = Realization::certain(instance);
  AbmStrategy abm(0.5, 0.5);
  util::Rng rng(4);
  const SimulationResult result =
      simulate(instance, truth, abm, 100, rng);
  EXPECT_EQ(result.trace.size(), 4u);
}

}  // namespace
}  // namespace accu
