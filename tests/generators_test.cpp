// Tests for the random-network generators: structural guarantees (node and
// edge counts, simplicity, connectivity where promised) and the statistical
// properties the dataset substitution relies on (mean degree, heavy tails,
// clustering), plus parameterized determinism sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace accu::graph {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  util::Rng rng(1);
  const NodeId n = 400;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, rng).build();
  EXPECT_EQ(g.num_nodes(), n);
  const double expected = p * n * (n - 1) / 2.0;  // 3990
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  util::Rng rng(2);
  EXPECT_EQ(erdos_renyi(50, 0.0, rng).build().num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).build().num_edges(), 190u);
}

TEST(ErdosRenyiTest, RejectsBadProbability) {
  util::Rng rng(3);
  EXPECT_THROW(erdos_renyi(10, 1.5, rng), InvalidArgument);
}

TEST(BarabasiAlbertTest, ExactEdgeCountAndConnectivity) {
  util::Rng rng(4);
  const Graph g = barabasi_albert(500, 3, rng).build();
  EXPECT_EQ(g.num_nodes(), 500u);
  // Star seed contributes 3 edges; each of the 496 later nodes adds 3.
  EXPECT_EQ(g.num_edges(), 3u + 496u * 3u);
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(BarabasiAlbertTest, MinimumDegreeIsAttachment) {
  util::Rng rng(5);
  const Graph g = barabasi_albert(300, 4, rng).build();
  EXPECT_GE(degree_stats(g).min, 4u);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  util::Rng rng(6);
  const Graph g = barabasi_albert(2000, 2, rng).build();
  const DegreeStats stats = degree_stats(g);
  // Preferential attachment produces hubs far above the mean.
  EXPECT_GT(stats.max, 10 * static_cast<std::uint32_t>(stats.mean));
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  util::Rng rng(7);
  EXPECT_THROW(barabasi_albert(5, 0, rng), InvalidArgument);
  EXPECT_THROW(barabasi_albert(3, 3, rng), InvalidArgument);
}

TEST(HolmeKimTest, MeanDegreeMatchesAttachment) {
  util::Rng rng(8);
  const std::uint32_t m = 10;
  const Graph g = holme_kim(1500, m, 0.5, rng).build();
  EXPECT_EQ(g.num_nodes(), 1500u);
  EXPECT_NEAR(degree_stats(g).mean, 2.0 * m, 0.5);
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(HolmeKimTest, TriadClosureRaisesClustering) {
  util::Rng rng(9);
  const Graph low = holme_kim(1200, 4, 0.0, rng).build();
  const Graph high = holme_kim(1200, 4, 0.9, rng).build();
  util::Rng crng(10);
  const double c_low = clustering_coefficient(low, 400, crng);
  const double c_high = clustering_coefficient(high, 400, crng);
  EXPECT_GT(c_high, 2.0 * c_low);
}

TEST(WattsStrogatzTest, LatticeWithoutRewiring) {
  util::Rng rng(11);
  const Graph g = watts_strogatz(100, 3, 0.0, rng).build();
  EXPECT_EQ(g.num_edges(), 300u);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeBudgetClose) {
  util::Rng rng(12);
  const Graph g = watts_strogatz(500, 4, 0.3, rng).build();
  // Rewiring may occasionally collide and drop an edge; stays close to nk.
  EXPECT_GE(g.num_edges(), 1950u);
  EXPECT_LE(g.num_edges(), 2000u);
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  util::Rng rng(13);
  EXPECT_THROW(watts_strogatz(10, 5, 0.1, rng), InvalidArgument);
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, rng), InvalidArgument);
}

TEST(PowerlawConfigurationTest, DegreesWithinBounds) {
  util::Rng rng(14);
  const Graph g = powerlaw_configuration(1000, 2.5, 3, 80, rng).build();
  EXPECT_EQ(g.num_nodes(), 1000u);
  const DegreeStats stats = degree_stats(g);
  // Erasing self-loops/multi-edges can only lower degrees below target.
  EXPECT_LE(stats.max, 80u);
  EXPECT_GE(stats.mean, 3.0);
}

TEST(PowerlawConfigurationTest, MeanDegreeTracksGamma) {
  util::Rng rng(15);
  // gamma = 2.5, min 8: continuous approximation gives mean ≈ 8·1.5/0.5 = 24.
  const Graph g = powerlaw_configuration(4000, 2.5, 8, 400, rng).build();
  EXPECT_NEAR(degree_stats(g).mean, 24.0, 6.0);
}

TEST(PowerlawConfigurationTest, RejectsBadParameters) {
  util::Rng rng(16);
  EXPECT_THROW(powerlaw_configuration(100, 0.5, 2, 10, rng), InvalidArgument);
  EXPECT_THROW(powerlaw_configuration(100, 2.5, 5, 3, rng), InvalidArgument);
  EXPECT_THROW(powerlaw_configuration(100, 2.5, 2, 100, rng),
               InvalidArgument);
}

TEST(CommunityAffiliationTest, MeanDegreeMatchesRecipe) {
  util::Rng rng(17);
  // memberships=2, mean size 8, intra 0.45 ⇒ E[deg] ≈ 2·7·0.45 ≈ 6.3.
  const Graph g = community_affiliation(3000, 8.0, 2, 0.45, rng).build();
  EXPECT_EQ(g.num_nodes(), 3000u);
  EXPECT_NEAR(degree_stats(g).mean, 6.3, 1.5);
}

TEST(CommunityAffiliationTest, CommunitiesAreClustered) {
  util::Rng rng(18);
  const Graph g = community_affiliation(2000, 10.0, 2, 0.6, rng).build();
  util::Rng crng(19);
  // Dense overlapping cliques give much higher clustering than an ER graph
  // of the same density (~ mean_deg / n ≈ 0.004).
  EXPECT_GT(clustering_coefficient(g, 400, crng), 0.1);
}

// Determinism: every generator must produce the identical graph from the
// same seed and a different one from a different seed.
struct GeneratorCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph make_er(std::uint64_t s) {
  util::Rng r(s);
  return erdos_renyi(200, 0.05, r).build();
}
Graph make_ba(std::uint64_t s) {
  util::Rng r(s);
  return barabasi_albert(200, 3, r).build();
}
Graph make_hk(std::uint64_t s) {
  util::Rng r(s);
  return holme_kim(200, 3, 0.5, r).build();
}
Graph make_ws(std::uint64_t s) {
  util::Rng r(s);
  return watts_strogatz(200, 3, 0.2, r).build();
}
Graph make_plc(std::uint64_t s) {
  util::Rng r(s);
  return powerlaw_configuration(200, 2.5, 2, 40, r).build();
}
Graph make_ca(std::uint64_t s) {
  util::Rng r(s);
  return community_affiliation(200, 8.0, 2, 0.5, r).build();
}

class GeneratorDeterminismTest
    : public testing::TestWithParam<GeneratorCase> {};

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const EdgeEndpoints ea = a.endpoints(e);
    const auto eb = b.find_edge(ea.lo, ea.hi);
    if (!eb.has_value() || b.edge_prob(*eb) != a.edge_prob(e)) return false;
  }
  return true;
}

TEST_P(GeneratorDeterminismTest, SameSeedSameGraph) {
  const GeneratorCase& c = GetParam();
  EXPECT_TRUE(same_graph(c.make(42), c.make(42)));
}

TEST_P(GeneratorDeterminismTest, DifferentSeedDifferentGraph) {
  const GeneratorCase& c = GetParam();
  EXPECT_FALSE(same_graph(c.make(42), c.make(43)));
}

TEST_P(GeneratorDeterminismTest, NoSelfLoopsOrDuplicates) {
  // GraphBuilder enforces simplicity; this guards the generators' use of it
  // by checking the built CSR directly.
  const Graph g = GetParam().make(7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto adj = g.neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      EXPECT_NE(adj[i].node, v);
      if (i > 0) EXPECT_NE(adj[i].node, adj[i - 1].node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorDeterminismTest,
    testing::Values(GeneratorCase{"erdos_renyi", make_er},
                    GeneratorCase{"barabasi_albert", make_ba},
                    GeneratorCase{"holme_kim", make_hk},
                    GeneratorCase{"watts_strogatz", make_ws},
                    GeneratorCase{"powerlaw_configuration", make_plc},
                    GeneratorCase{"community_affiliation", make_ca}),
    [](const testing::TestParamInfo<GeneratorCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace accu::graph
