// Unit tests for the CSR graph, builder, I/O and classic algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace accu::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail, isolated 4.
  GraphBuilder b(5);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.25);
  b.add_edge(0, 2, 1.0);
  b.add_edge(2, 3, 0.75);
  return b.build();
}

TEST(GraphBuilderTest, BasicCounts) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), InvalidArgument);
}

TEST(GraphBuilderTest, RejectsDuplicateBothOrientations) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(b.add_edge(0, 1), InvalidArgument);
  EXPECT_THROW(b.add_edge(1, 0), InvalidArgument);
  EXPECT_FALSE(b.try_add_edge(1, 0));
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(GraphBuilderTest, RejectsOutOfRangeAndBadProb) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), InvalidArgument);
  EXPECT_THROW(b.add_edge(0, 1, 1.5), InvalidArgument);
  EXPECT_THROW(b.add_edge(0, 1, -0.1), InvalidArgument);
}

TEST(GraphBuilderTest, SetProbAndEdgeAt) {
  GraphBuilder b(3);
  b.add_edge(2, 0, 0.5);
  const EdgeEndpoints ep = b.edge_at(0);
  EXPECT_EQ(ep.lo, 0u);
  EXPECT_EQ(ep.hi, 2u);
  b.set_prob(0, 0.125);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(g.edge_prob(0), 0.125);
  EXPECT_THROW(b.set_prob(0, 2.0), InvalidArgument);
}

TEST(GraphTest, FromCsrRoundTripsRawArrays) {
  const Graph g = triangle_plus_tail();
  const Graph h = Graph::from_csr(
      g.num_nodes(), {g.raw_offsets().begin(), g.raw_offsets().end()},
      {g.raw_adjacency().begin(), g.raw_adjacency().end()},
      {g.raw_probs().begin(), g.raw_probs().end()},
      {g.raw_endpoints().begin(), g.raw_endpoints().end()});
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.degree(2), g.degree(2));
}

TEST(GraphTest, FromCsrRejectsOffsetsPastTheSlotSpace) {
  const Graph g = triangle_plus_tail();
  std::vector<std::size_t> offsets(g.raw_offsets().begin(),
                                   g.raw_offsets().end());
  // Row 0 passes the pairwise begin <= end check, so the per-row upper
  // bound must fire before the scan ever indexes adjacency.
  offsets[1] = 1u << 20;
  EXPECT_THROW(
      Graph::from_csr(g.num_nodes(), offsets,
                      {g.raw_adjacency().begin(), g.raw_adjacency().end()},
                      {g.raw_probs().begin(), g.raw_probs().end()},
                      {g.raw_endpoints().begin(), g.raw_endpoints().end()}),
      InvalidArgument);
}

TEST(GraphTest, AdjacencyIsSortedAndSymmetric) {
  const Graph g = triangle_plus_tail();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto adj = g.neighbors(v);
    for (std::size_t i = 1; i < adj.size(); ++i) {
      EXPECT_LT(adj[i - 1].node, adj[i].node);
    }
    for (const Neighbor& nb : adj) {
      // Mirror entry exists and shares the edge id.
      const auto mirror = g.find_edge(nb.node, v);
      ASSERT_TRUE(mirror.has_value());
      EXPECT_EQ(*mirror, nb.edge);
    }
  }
}

TEST(GraphTest, FindEdgeAndProb) {
  const Graph g = triangle_plus_tail();
  const auto e = g.find_edge(1, 2);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(g.edge_prob(*e), 0.25);
  EXPECT_FALSE(g.find_edge(0, 3).has_value());
  EXPECT_FALSE(g.find_edge(4, 0).has_value());
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(GraphTest, EndpointsNormalized) {
  const Graph g = triangle_plus_tail();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(g.endpoints(e).lo, g.endpoints(e).hi);
  }
}

TEST(GraphTest, ExpectedDegree) {
  const Graph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(g.expected_degree(0), 1.5);   // 0.5 + 1.0
  EXPECT_DOUBLE_EQ(g.expected_degree(2), 2.0);   // 0.25 + 1.0 + 0.75
  EXPECT_DOUBLE_EQ(g.expected_degree(4), 0.0);
  EXPECT_DOUBLE_EQ(g.expected_num_edges(), 2.5);
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// ------------------------------------------------------------- algorithms ----

TEST(AlgorithmsTest, BfsDistances) {
  const Graph g = triangle_plus_tail();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(AlgorithmsTest, ConnectedComponents) {
  const Graph g = triangle_plus_tail();
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_EQ(comps.label[0], comps.label[3]);
  EXPECT_NE(comps.label[0], comps.label[4]);
}

TEST(AlgorithmsTest, LargestComponent) {
  const Graph g = triangle_plus_tail();
  const auto lc = largest_component(g);
  EXPECT_EQ(lc, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(AlgorithmsTest, InducedSubgraphKeepsProbs) {
  const Graph g = triangle_plus_tail();
  const auto sub = induced_subgraph(g, {0, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // (0,2) and (2,3)
  const auto e02 = sub.graph.find_edge(0, 1);  // relabeled 2 -> 1
  ASSERT_TRUE(e02.has_value());
  EXPECT_DOUBLE_EQ(sub.graph.edge_prob(*e02), 1.0);
  const auto e23 = sub.graph.find_edge(1, 2);
  ASSERT_TRUE(e23.has_value());
  EXPECT_DOUBLE_EQ(sub.graph.edge_prob(*e23), 0.75);
  EXPECT_EQ(sub.original_id, (std::vector<NodeId>{0, 2, 3}));
}

TEST(AlgorithmsTest, DegreeStats) {
  const Graph g = triangle_plus_tail();
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.median, 2.0);  // degrees 0,1,2,2,3
}

TEST(AlgorithmsTest, DegreeWindowFraction) {
  const Graph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(degree_window_fraction(g, 2, 3), 0.6);
  EXPECT_DOUBLE_EQ(degree_window_fraction(g, 5, 9), 0.0);
}

TEST(AlgorithmsTest, TrianglesAt) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(triangles_at(g, 0), 1u);
  EXPECT_EQ(triangles_at(g, 2), 1u);
  EXPECT_EQ(triangles_at(g, 3), 0u);
}

TEST(AlgorithmsTest, ClusteringCoefficientExactOnSmall) {
  const Graph g = triangle_plus_tail();
  util::Rng rng(1);
  // Eligible: 0 (C=1), 1 (C=1), 2 (C=1/3).  Average = 7/9.
  EXPECT_NEAR(clustering_coefficient(g, 100, rng), 7.0 / 9.0, 1e-12);
}

TEST(AlgorithmsTest, CoreNumbers) {
  // A 4-clique with a pendant vertex: clique nodes have core 3, pendant 1.
  GraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  }
  b.add_edge(3, 4);
  const auto core = core_numbers(b.build());
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
}

TEST(AlgorithmsTest, CoreNumbersPath) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const auto core = core_numbers(b.build());
  for (const auto c : core) EXPECT_EQ(c, 1u);
}

// --------------------------------------------------------------------- io ----

TEST(IoTest, RoundTripPreservesEverything) {
  const Graph g = triangle_plus_tail();
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeEndpoints ep = g.endpoints(e);
    const auto mirrored = back.find_edge(ep.lo, ep.hi);
    ASSERT_TRUE(mirrored.has_value());
    EXPECT_DOUBLE_EQ(back.edge_prob(*mirrored), g.edge_prob(e));
  }
}

TEST(IoTest, ReadsSnapStyleListWithoutHeader) {
  std::stringstream in("0 1\n1 2\n2 2\n1 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);  // self-loop and duplicate dropped
  EXPECT_DOUBLE_EQ(g.edge_prob(0), 1.0);
}

TEST(IoTest, RejectsMalformedLine) {
  std::stringstream in("0 x\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(IoTest, RejectsBadProbability) {
  std::stringstream in("0 1 1.5\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(IoTest, RejectsEndpointBeyondDeclaredCount) {
  std::stringstream in("# accu-graph nodes=2 edges=1\n0 5 0.5\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(IoTest, FileRoundTrip) {
  const Graph g = triangle_plus_tail();
  const std::string path = testing::TempDir() + "accu_io_test.edges";
  write_edge_list_file(g, path);
  const Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/definitely/missing"),
               IoError);
}

}  // namespace
}  // namespace accu::graph
