// Feedback-model property tests (DESIGN.md §15).
//
// The feedback refactor made the revelation pipeline a pluggable
// FeedbackModel policy.  These tests pin it from four sides:
//
//   1. Full feedback is the status quo, byte-for-byte: a verbatim copy of
//      the pre-refactor simulation loop must produce bit-identical traces
//      through the engine for every shipped strategy, and the degenerate
//      parameters (delayed d=0, batched b<=1) must take the identical code
//      path via FeedbackModel::is_full.
//   2. Model semantics: myopic never reveals a neighborhood (an
//      instrumented probe asserts the observed layer stays dark), delayed
//      revelations land exactly d rounds late, batched ones at batch
//      boundaries, and the observed/true benefit layers each stay
//      internally consistent.
//   3. The incremental ScoreEngine consumes late-arriving deltas without
//      breaking its bit-exact pinning against the scalar oracle: ABM
//      incremental vs ABM reference traces must match under every model.
//   4. The experiment harness: a non-full sweep checkpoints, resumes,
//      shards, and merges bit-identically; the feedback model is part of
//      the checkpoint fingerprint; full-mode checkpoint bytes carry no
//      feedback line (format stability).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/feedback.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/lookahead.hpp"
#include "core/strategies/retrying.hpp"
#include "core/theory/estimator.hpp"
#include "datasets/datasets.hpp"

namespace accu {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation: the pre-feedback-refactor reliable loop, copied
// verbatim (the same legacy copy engine_test.cpp keeps).  Its value is
// being the old code — do not modernize it.
// ---------------------------------------------------------------------------

bool ref_resolve_acceptance(const AccuInstance& instance,
                            const Realization& truth, const AttackerView& view,
                            NodeId target) {
  if (instance.is_cautious(target)) {
    const bool reached = view.cautious_would_accept(target);
    return reached ? truth.cautious_above_accepts(target)
                   : truth.cautious_below_accepts(target);
  }
  return truth.reckless_accepts(target);
}

SimulationResult reference_simulate(const AccuInstance& instance,
                                    const Realization& truth,
                                    Strategy& strategy, std::uint32_t budget,
                                    util::Rng& rng) {
  AttackerView view(instance);
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);

  while (view.num_requests() < budget) {
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();

    const bool accepted = ref_resolve_acceptance(instance, truth, view, target);
    record.accepted = accepted;

    if (accepted) {
      const AttackerView::AcceptanceEffects effects =
          view.record_acceptance(target, truth);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, true, view, &effects);
    } else {
      view.record_rejection(target);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, false, view, nullptr);
    }
    result.trace.push_back(record);
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

AccuInstance facebook_instance(double scale = 0.05) {
  util::Rng rng(7);
  datasets::DatasetConfig config;
  config.scale = scale;
  config.num_cautious = 10;
  return datasets::make_dataset("facebook", config, rng);
}

struct NamedFactory {
  std::string name;
  std::function<std::unique_ptr<Strategy>()> make;
};

/// Every single-bot strategy the library ships (the engine_test roster).
std::vector<NamedFactory> all_strategies() {
  std::vector<NamedFactory> out;
  out.push_back({"Random", [] { return std::make_unique<RandomStrategy>(); }});
  out.push_back(
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }});
  out.push_back(
      {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }});
  out.push_back(
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }});
  out.push_back({"ABM-reference", [] {
                   AbmStrategy::Config config;
                   config.incremental = false;
                   return std::make_unique<AbmStrategy>(config);
                 }});
  out.push_back({"BatchedABM", [] {
                   return std::make_unique<BatchedAbmStrategy>(
                       PotentialWeights{0.5, 0.5}, 5);
                 }});
  out.push_back({"BatchedABM-scalar", [] {
                   return std::make_unique<BatchedAbmStrategy>(
                       PotentialWeights{0.5, 0.5}, 5, /*flat_scoring=*/false);
                 }});
  out.push_back({"Lookahead", [] {
                   LookaheadStrategy::Config config;
                   config.beam = 4;
                   config.scenario_samples = 2;
                   return std::make_unique<LookaheadStrategy>(config);
                 }});
  out.push_back({"ABM+retry", [] {
                   return std::make_unique<RetryingStrategy>(
                       std::make_unique<AbmStrategy>(0.5, 0.5),
                       util::RetryPolicy::exponential_jitter(3));
                 }});
  return out;
}

void expect_same(const SimulationResult& a, const SimulationResult& b,
                 const std::string& label) {
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const RequestRecord& x = a.trace[i];
    const RequestRecord& y = b.trace[i];
    EXPECT_EQ(x.target, y.target) << label << " @" << i;
    EXPECT_EQ(x.accepted, y.accepted) << label << " @" << i;
    EXPECT_EQ(x.cautious_target, y.cautious_target) << label << " @" << i;
    EXPECT_EQ(x.benefit_before, y.benefit_before) << label << " @" << i;
    EXPECT_EQ(x.benefit_after, y.benefit_after) << label << " @" << i;
    EXPECT_EQ(x.fault, y.fault) << label << " @" << i;
    EXPECT_EQ(x.attempt, y.attempt) << label << " @" << i;
  }
  EXPECT_EQ(a.total_benefit, b.total_benefit) << label;
  EXPECT_EQ(a.num_accepted, b.num_accepted) << label;
  EXPECT_EQ(a.num_cautious_friends, b.num_cautious_friends) << label;
  EXPECT_EQ(a.friends, b.friends) << label;
  EXPECT_EQ(a.num_faulted, b.num_faulted) << label;
  EXPECT_EQ(a.num_retries, b.num_retries) << label;
  EXPECT_EQ(a.rounds_suspended, b.rounds_suspended) << label;
  EXPECT_EQ(a.num_abandoned, b.num_abandoned) << label;
}

// ---------------------------------------------------------------------------
// FeedbackModel parsing and arithmetic.
// ---------------------------------------------------------------------------

TEST(FeedbackModelTest, SpecRoundTripsEveryModel) {
  const FeedbackModel full;
  EXPECT_EQ(full.spec(), "full");
  EXPECT_TRUE(FeedbackModel::parse("full") == full);

  const FeedbackModel myopic{FeedbackKind::kMyopic, 0};
  EXPECT_EQ(myopic.spec(), "myopic");
  EXPECT_TRUE(FeedbackModel::parse("myopic") == myopic);

  const FeedbackModel delayed{FeedbackKind::kDelayed, 3};
  EXPECT_EQ(delayed.spec(), "delayed:3");
  EXPECT_TRUE(FeedbackModel::parse("delayed", 3) == delayed);
  EXPECT_TRUE(FeedbackModel::parse("delayed:3") == delayed);
  EXPECT_TRUE(FeedbackModel::parse(delayed.spec()) == delayed);

  const FeedbackModel batched{FeedbackKind::kBatched, 10};
  EXPECT_EQ(batched.spec(), "batched:10");
  EXPECT_TRUE(FeedbackModel::parse("batched", 10) == batched);
  EXPECT_TRUE(FeedbackModel::parse(batched.spec()) == batched);
}

TEST(FeedbackModelTest, DegenerateParametersNormalizeToFull) {
  EXPECT_TRUE((FeedbackModel{FeedbackKind::kDelayed, 0}).is_full());
  EXPECT_TRUE((FeedbackModel{FeedbackKind::kBatched, 0}).is_full());
  EXPECT_TRUE((FeedbackModel{FeedbackKind::kBatched, 1}).is_full());
  EXPECT_FALSE((FeedbackModel{FeedbackKind::kDelayed, 1}).is_full());
  EXPECT_FALSE((FeedbackModel{FeedbackKind::kBatched, 2}).is_full());
  EXPECT_FALSE((FeedbackModel{FeedbackKind::kMyopic, 0}).is_full());
  // Normalizing equality: every full-equivalent model compares equal and
  // prints as "full".
  EXPECT_TRUE((FeedbackModel{FeedbackKind::kDelayed, 0}) == FeedbackModel{});
  EXPECT_TRUE((FeedbackModel{FeedbackKind::kBatched, 1}) == FeedbackModel{});
  EXPECT_EQ((FeedbackModel{FeedbackKind::kBatched, 1}).spec(), "full");
}

TEST(FeedbackModelTest, RejectsInvalidSpecsWithDiagnostics) {
  // Zero-parameter delayed/batched must be an explicit error, not a silent
  // full run (a forgotten --feedback-delay should not pass).
  EXPECT_THROW((void)FeedbackModel::parse("delayed", 0), InvalidArgument);
  EXPECT_THROW((void)FeedbackModel::parse("batched", 0), InvalidArgument);
  // A parameter on full/myopic is equally suspicious.
  EXPECT_THROW((void)FeedbackModel::parse("full", 2), InvalidArgument);
  EXPECT_THROW((void)FeedbackModel::parse("myopic", 2), InvalidArgument);
  // Unknown names carry a did-you-mean hint.
  try {
    (void)FeedbackModel::parse("delyed", 1);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("delayed"), std::string::npos);
  }
  EXPECT_THROW((void)FeedbackModel::parse(""), InvalidArgument);
  EXPECT_THROW((void)FeedbackModel::parse("delayed:"), InvalidArgument);
  EXPECT_THROW((void)FeedbackModel::parse("delayed:x"), InvalidArgument);
}

TEST(FeedbackModelTest, DueRoundArithmetic) {
  const FeedbackModel delayed{FeedbackKind::kDelayed, 3};
  EXPECT_EQ(delayed.due_round(0), 3u);
  EXPECT_EQ(delayed.due_round(5), 8u);
  // Batched: the first boundary strictly after the acceptance round.
  const FeedbackModel batched{FeedbackKind::kBatched, 10};
  EXPECT_EQ(batched.due_round(0), 10u);
  EXPECT_EQ(batched.due_round(9), 10u);
  EXPECT_EQ(batched.due_round(10), 20u);
  EXPECT_EQ(batched.due_round(19), 20u);
}

// ---------------------------------------------------------------------------
// 1. Full feedback is the status quo, bit-for-bit.
// ---------------------------------------------------------------------------

TEST(FeedbackEquivalenceTest, FullFeedbackMatchesLegacyLoopForAllStrategies) {
  const AccuInstance instance = facebook_instance();
  for (std::uint64_t world = 0; world < 3; ++world) {
    util::Rng truth_rng(100 + world);
    const Realization truth = Realization::sample(instance, truth_rng);
    for (const NamedFactory& factory : all_strategies()) {
      auto legacy = factory.make();
      auto refactored = factory.make();
      util::Rng rng_a(world * 31 + 5);
      util::Rng rng_b(world * 31 + 5);
      const SimulationResult a =
          reference_simulate(instance, truth, *legacy, 40, rng_a);
      const SimulationResult b =
          simulate(instance, truth, *refactored, 40, rng_b,
                   /*cancel=*/nullptr, FeedbackModel{});
      expect_same(a, b, factory.name + " world " + std::to_string(world));
    }
  }
}

TEST(FeedbackEquivalenceTest, DegenerateParametersShareTheFullPath) {
  const AccuInstance instance = facebook_instance();
  util::Rng truth_rng(42);
  const Realization truth = Realization::sample(instance, truth_rng);
  const FeedbackModel degenerate[] = {
      FeedbackModel{FeedbackKind::kDelayed, 0},
      FeedbackModel{FeedbackKind::kBatched, 1},
  };
  for (const NamedFactory& factory : all_strategies()) {
    auto full = factory.make();
    util::Rng rng_full(9);
    const SimulationResult expected =
        simulate(instance, truth, *full, 40, rng_full);
    for (const FeedbackModel& model : degenerate) {
      auto strategy = factory.make();
      util::Rng rng(9);
      const SimulationResult got = simulate(instance, truth, *strategy, 40,
                                            rng, /*cancel=*/nullptr, model);
      expect_same(expected, got, factory.name + " " + model.spec());
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Model semantics.
// ---------------------------------------------------------------------------

/// Deterministic probe: requests the lowest un-requested id and, after every
/// outcome, asserts the myopic contract — the observed layer never contains
/// a neighborhood revelation (no edge observed, every mutual count zero).
class MyopicProbeStrategy final : public Strategy {
 public:
  void reset(const AccuInstance& instance, util::Rng&) override {
    num_nodes_ = instance.num_nodes();
    next_ = 0;
  }
  NodeId select(const AttackerView&, util::Rng&) override {
    return next_ < num_nodes_ ? next_++ : kInvalidNode;
  }
  void observe(NodeId, bool, const AttackerView& view,
               const AttackerView::AcceptanceEffects* effects) override {
    EXPECT_EQ(view.num_observed_edges(), 0u);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      ASSERT_EQ(view.mutual_friends(v), 0u) << "node " << v;
    }
    if (effects != nullptr) {
      EXPECT_TRUE(effects->new_fof.empty());
      EXPECT_TRUE(effects->mutual_increased.empty());
    }
  }
  void observe_revelation(NodeId, const AttackerView&,
                          const AttackerView::AcceptanceEffects&) override {
    FAIL() << "myopic feedback must never deliver a revelation";
  }
  [[nodiscard]] std::string name() const override { return "MyopicProbe"; }

 private:
  NodeId num_nodes_ = 0;
  NodeId next_ = 0;
};

TEST(FeedbackSemanticsTest, MyopicViewNeverObservesANeighborhood) {
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng truth_rng(5);
  const Realization truth = Realization::sample(instance, truth_rng);
  MyopicProbeStrategy probe;
  util::Rng rng(6);
  AttackerView view(instance);
  const SimulationResult result = simulate_with_view(
      instance, truth, probe, 30, rng, view, /*cancel=*/nullptr,
      FeedbackModel{FeedbackKind::kMyopic, 0});
  EXPECT_GT(result.num_accepted, 0u);  // the probe did accept people
  EXPECT_EQ(view.num_observed_edges(), 0u);
  EXPECT_EQ(view.pending_revelations(), 0u);  // myopic queues nothing
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    ASSERT_EQ(view.edge_state(e), EdgeState::kUnknown) << "edge " << e;
  }
  // With nothing observed, believed mutual mass is purely prior-weighted
  // and bounded by the node's potential degree.
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    const double believed = view.believed_mutual_friends(v);
    ASSERT_GE(believed, 0.0);
    ASSERT_LE(believed,
              static_cast<double>(instance.graph().neighbors(v).size()));
  }
}

TEST(FeedbackSemanticsTest, DelayedBeyondBudgetObservesLikeMyopic) {
  // A delay longer than the attack means no revelation ever lands: the
  // observed layer must be indistinguishable from myopic, with the
  // undelivered revelations still queued.
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng truth_rng(15);
  const Realization truth = Realization::sample(instance, truth_rng);
  const std::uint32_t budget = 25;

  MaxDegreeStrategy a;
  util::Rng rng_a(3);
  AttackerView view_delayed(instance);
  const SimulationResult delayed = simulate_with_view(
      instance, truth, a, budget, rng_a, view_delayed, nullptr,
      FeedbackModel{FeedbackKind::kDelayed, 1000});

  MaxDegreeStrategy b;
  util::Rng rng_b(3);
  AttackerView view_myopic(instance);
  const SimulationResult myopic = simulate_with_view(
      instance, truth, b, budget, rng_b, view_myopic, nullptr,
      FeedbackModel{FeedbackKind::kMyopic, 0});

  expect_same(delayed, myopic, "delayed:1000 vs myopic");
  EXPECT_EQ(view_delayed.num_observed_edges(), 0u);
  EXPECT_EQ(view_delayed.pending_revelations(),
            static_cast<std::size_t>(delayed.num_accepted));
  EXPECT_EQ(view_myopic.pending_revelations(), 0u);
}

TEST(FeedbackSemanticsTest, DelayedRevelationLandsExactlyOnItsDueRound) {
  // Drive the view by hand: accept at round 0 under delayed:3 and check the
  // queue refuses delivery until the clock reaches round 3.
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng truth_rng(21);
  const Realization truth = Realization::sample(instance, truth_rng);
  // Pick a target with at least one realized neighbor so delivery has a
  // visible effect.
  NodeId target = kInvalidNode;
  for (NodeId v = 0; v < instance.num_nodes() && target == kInvalidNode; ++v) {
    for (const graph::Neighbor& nb : instance.graph().neighbors(v)) {
      if (truth.edge_present(nb.edge)) {
        target = v;
        break;
      }
    }
  }
  ASSERT_NE(target, kInvalidNode);

  AttackerView view(instance);
  view.arm_feedback(FeedbackModel{FeedbackKind::kDelayed, 3});
  AttackerView::AcceptanceEffects effects;
  view.set_feedback_round(0);
  view.record_acceptance(target, truth, effects);
  EXPECT_TRUE(effects.new_fof.empty());
  EXPECT_EQ(view.pending_revelations(), 1u);
  EXPECT_EQ(view.num_observed_edges(), 0u);

  for (std::uint64_t round = 0; round < 3; ++round) {
    view.set_feedback_round(round);
    EXPECT_FALSE(view.has_due_revelation()) << "round " << round;
  }
  view.set_feedback_round(3);
  ASSERT_TRUE(view.has_due_revelation());
  EXPECT_EQ(view.deliver_next_revelation(truth, effects), target);
  EXPECT_EQ(view.pending_revelations(), 0u);
  EXPECT_EQ(view.num_observed_edges(),
            instance.graph().neighbors(target).size());
  // Delivery reconciles the observed layer with the true layer.
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    ASSERT_EQ(view.mutual_friends(v), view.true_mutual_friends(v));
  }
  EXPECT_DOUBLE_EQ(view.current_benefit(), view.true_benefit());
}

TEST(FeedbackSemanticsTest, ObservedAndTrueLayersStayConsistent) {
  const AccuInstance instance = facebook_instance();
  const FeedbackModel models[] = {
      FeedbackModel{FeedbackKind::kMyopic, 0},
      FeedbackModel{FeedbackKind::kDelayed, 4},
      FeedbackModel{FeedbackKind::kBatched, 6},
  };
  util::Rng truth_rng(33);
  const Realization truth = Realization::sample(instance, truth_rng);
  for (const FeedbackModel& model : models) {
    SCOPED_TRACE(model.spec());
    AbmStrategy abm(0.5, 0.5);
    util::Rng rng(8);
    AttackerView view(instance);
    const SimulationResult result = simulate_with_view(
        instance, truth, abm, 40, rng, view, nullptr, model);

    // Observed layer: the incremental benefit equals an O(V) recompute
    // from the observed state alone.
    ASSERT_NEAR(view.current_benefit(), view.recompute_benefit(), 1e-9);

    // True layer: total_benefit is the realized Eq. (1) value — recompute
    // it from the friend set and the ground-truth realization.
    const BenefitModel& benefits = instance.benefits();
    std::vector<bool> is_friend(instance.num_nodes(), false);
    for (const NodeId u : result.friends) is_friend[u] = true;
    double realized = 0.0;
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      if (is_friend[v]) {
        realized += benefits.friend_benefit(v);
        continue;
      }
      for (const graph::Neighbor& nb : instance.graph().neighbors(v)) {
        if (is_friend[nb.node] && truth.edge_present(nb.edge)) {
          realized += benefits.fof_benefit(v);
          break;
        }
      }
    }
    ASSERT_NEAR(result.total_benefit, realized, 1e-9);
    EXPECT_DOUBLE_EQ(result.total_benefit, view.true_benefit());

    // The observed layer can only lag the true layer, never lead it.
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      ASSERT_LE(view.mutual_friends(v), view.true_mutual_friends(v));
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Incremental ScoreEngine vs the scalar oracle under deferred feedback.
// ---------------------------------------------------------------------------

TEST(FeedbackEquivalenceTest, IncrementalAbmMatchesScalarOracleUnderAllModels) {
  const AccuInstance instance = facebook_instance();
  const FeedbackModel models[] = {
      FeedbackModel{FeedbackKind::kMyopic, 0},
      FeedbackModel{FeedbackKind::kDelayed, 1},
      FeedbackModel{FeedbackKind::kDelayed, 5},
      FeedbackModel{FeedbackKind::kBatched, 4},
      FeedbackModel{FeedbackKind::kBatched, 16},
  };
  for (std::uint64_t world = 0; world < 3; ++world) {
    util::Rng truth_rng(300 + world);
    const Realization truth = Realization::sample(instance, truth_rng);
    for (const FeedbackModel& model : models) {
      AbmStrategy incremental(0.5, 0.5);
      AbmStrategy::Config scalar_config;
      scalar_config.incremental = false;
      AbmStrategy scalar(scalar_config);
      util::Rng rng_a(world * 13 + 1);
      util::Rng rng_b(world * 13 + 1);
      const SimulationResult a = simulate(instance, truth, incremental, 40,
                                          rng_a, nullptr, model);
      const SimulationResult b =
          simulate(instance, truth, scalar, 40, rng_b, nullptr, model);
      expect_same(a, b,
                  model.spec() + " world " + std::to_string(world));
    }
  }
}

TEST(FeedbackEquivalenceTest, AllStrategiesRunUnderDeferredModelsWithFaults) {
  // Smoke + invariants across the whole roster, fault layer included: the
  // deferred path must hold its observed-layer consistency under retries,
  // suspensions, and abandonment.
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng truth_rng(77);
  const Realization truth = Realization::sample(instance, truth_rng);
  const FaultConfig fault_config = FaultConfig::uniform(0.3, 3);
  const FeedbackModel model{FeedbackKind::kBatched, 5};
  for (const NamedFactory& factory : all_strategies()) {
    auto strategy = factory.make();
    util::Rng rng(19);
    FaultModel faults(fault_config, 23);
    AttackerView view(instance);
    const SimulationResult result =
        simulate_with_faults(instance, truth, *strategy, 50, rng, faults,
                             view, nullptr, model);
    SCOPED_TRACE(factory.name);
    ASSERT_NEAR(view.current_benefit(), view.recompute_benefit(), 1e-9);
    EXPECT_DOUBLE_EQ(result.total_benefit, view.true_benefit());
  }
}

TEST(FeedbackEquivalenceTest, WorkspaceReuseAcrossModelsStaysBitIdentical) {
  // One pooled SimWorkspace cycled full -> deferred -> full must leave no
  // residue: the second full cell must equal the first bit-for-bit (the
  // pending queue and true layer are pooled members that reset re-arms).
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng truth_rng(55);
  const Realization truth = Realization::sample(instance, truth_rng);
  SimWorkspace ws;
  AbmStrategy abm(0.5, 0.5);
  SimulationResult first, middle, second;
  {
    util::Rng rng(4);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, 30, rng, view, ws, first);
  }
  {
    util::Rng rng(4);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, 30, rng, view, ws, middle, nullptr,
                  FeedbackModel{FeedbackKind::kDelayed, 3});
  }
  {
    util::Rng rng(4);
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, truth, abm, 30, rng, view, ws, second);
  }
  expect_same(first, second, "full cell after a deferred cell");
  // And the deferred cell is reproducible from a fresh workspace too.
  {
    SimWorkspace fresh;
    AbmStrategy abm2(0.5, 0.5);
    SimulationResult expected;
    util::Rng rng(4);
    AttackerView& view = fresh.reset_view(instance);
    simulate_into(instance, truth, abm2, 30, rng, view, fresh, expected,
                  nullptr, FeedbackModel{FeedbackKind::kDelayed, 3});
    expect_same(expected, middle, "deferred cell, pooled vs fresh");
  }
}

// ---------------------------------------------------------------------------
// 4. Experiment harness: checkpointing, sharding, fingerprints.
// ---------------------------------------------------------------------------

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

ExperimentConfig feedback_config() {
  ExperimentConfig config;
  config.budget = 20;
  config.samples = 2;
  config.runs = 3;
  config.seed = 31;
  config.feedback = FeedbackModel{FeedbackKind::kBatched, 4};
  return config;
}

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

void expect_identical_aggregates(const TraceAggregator& x,
                                 const TraceAggregator& y) {
  EXPECT_EQ(x.total_benefit().count(), y.total_benefit().count());
  EXPECT_EQ(x.total_benefit().mean(), y.total_benefit().mean());
  EXPECT_EQ(x.total_benefit().variance(), y.total_benefit().variance());
  EXPECT_EQ(x.cautious_friends().mean(), y.cautious_friends().mean());
  EXPECT_EQ(x.accepted_requests().mean(), y.accepted_requests().mean());
  ASSERT_EQ(x.cumulative_benefit().length(), y.cumulative_benefit().length());
  for (std::size_t i = 0; i < x.cumulative_benefit().length(); ++i) {
    EXPECT_EQ(x.cumulative_benefit().at(i).mean(),
              y.cumulative_benefit().at(i).mean())
        << "index " << i;
  }
}

void expect_identical_results(const ExperimentResult& a,
                              const ExperimentResult& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  for (std::size_t s = 0; s < a.aggregates.size(); ++s) {
    SCOPED_TRACE(a.strategy_names[s]);
    expect_identical_aggregates(a.aggregates[s], b.aggregates[s]);
  }
}

TEST(FeedbackExperimentTest, NonFullSweepShardsAndMergesBitIdentically) {
  const ExperimentConfig plain = feedback_config();
  const ExperimentResult sequential =
      run_experiment(tiny_factory(), two_strategies(), plain);
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ExperimentConfig shard = plain;
    shard.shard_index = i;
    shard.shard_count = 3;
    shard.checkpoint_path =
        temp_path("accu_feedback_shard" + std::to_string(i) + ".txt");
    (void)run_experiment(tiny_factory(), two_strategies(), shard);
    paths.push_back(shard.checkpoint_path);
  }
  const ShardMergeOutcome merged = merge_shard_checkpoints(paths);
  EXPECT_EQ(merged.cells_merged,
            static_cast<std::size_t>(plain.samples) * plain.runs);
  expect_identical_results(sequential, merged.result);
  // The merged config carries the feedback model back out.
  EXPECT_TRUE(merged.config.feedback == plain.feedback);
}

TEST(FeedbackExperimentTest, NonFullSweepResumesBitIdentically) {
  ExperimentConfig config = feedback_config();
  config.checkpoint_path = temp_path("accu_feedback_resume.txt");
  const ExperimentResult first =
      run_experiment(tiny_factory(), two_strategies(), config);
  // The checkpoint records the model...
  EXPECT_NE(read_file(config.checkpoint_path).find("\nfeedback batched:4\n"),
            std::string::npos);
  // ...and a resume restores every cell without re-running any.
  std::size_t fresh_cells = 0;
  config.progress = [&](const ExperimentProgress& p) {
    if (!p.restored) ++fresh_cells;
  };
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_EQ(fresh_cells, 0u);
  expect_identical_results(first, resumed);
}

TEST(FeedbackExperimentTest, FeedbackModelIsPartOfTheFingerprint) {
  ExperimentConfig config = feedback_config();
  config.checkpoint_path = temp_path("accu_feedback_fp.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), config);
  // Same sweep under a different feedback model must refuse the file.
  config.feedback = FeedbackModel{FeedbackKind::kDelayed, 4};
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
  config.feedback = FeedbackModel{};
  EXPECT_THROW(run_experiment(tiny_factory(), two_strategies(), config),
               IoError);
}

TEST(FeedbackExperimentTest, FullModeCheckpointBytesCarryNoFeedbackLine) {
  // Format stability: the default model must leave checkpoint files
  // byte-compatible with pre-feedback-axis readers.
  ExperimentConfig config = feedback_config();
  config.feedback = FeedbackModel{};
  config.checkpoint_path = temp_path("accu_feedback_fullmode.txt");
  (void)run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_EQ(read_file(config.checkpoint_path).find("feedback"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Theory estimator: the adaptivity-gap helper.
// ---------------------------------------------------------------------------

TEST(FeedbackTheoryTest, AdaptivityGapIsOneUnderFullAndBoundedOtherwise) {
  const AccuInstance instance = facebook_instance(0.03);
  util::Rng rng(11);
  const auto make = [] {
    return std::unique_ptr<Strategy>(new AbmStrategy(0.5, 0.5));
  };
  // Full feedback vs itself: identical runs, gap exactly 1.
  util::Rng rng_full(11);
  EXPECT_DOUBLE_EQ(
      empirical_adaptivity_gap(instance, make, 20, 4, rng_full,
                               FeedbackModel{}),
      1.0);
  // Restricted feedback: the gap is a positive ratio; ABM still harvests
  // reckless users blind, so it cannot collapse to zero here.
  const double gap = empirical_adaptivity_gap(
      instance, make, 20, 4, rng, FeedbackModel{FeedbackKind::kMyopic, 0});
  EXPECT_GT(gap, 0.0);
  EXPECT_LT(gap, 1.5);  // sanity ceiling: restricted ≈<= full on average
}

}  // namespace
}  // namespace accu
