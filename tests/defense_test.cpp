// Tests for the defender-side analysis: vulnerability assessment
// statistics, ranking, and threshold recommendation.

#include <gtest/gtest.h>

#include "core/defense.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu::defense {
namespace {

AccuInstance facebook_like(double theta_fraction, std::uint64_t seed) {
  util::Rng rng(seed);
  datasets::DatasetConfig config;
  config.scale = 0.08;  // ~320 nodes
  config.num_cautious = 15;
  config.threshold_fraction = theta_fraction;
  return datasets::make_dataset("facebook", config, rng);
}

TEST(AssessTest, ReportShapesAndRanges) {
  const AccuInstance instance = facebook_like(0.3, 11);
  AttackModel model;
  model.budget = 60;
  model.trials = 8;
  model.seed = 3;
  const VulnerabilityReport report = assess(instance, model);
  ASSERT_EQ(report.cautious_users.size(), instance.num_cautious());
  ASSERT_EQ(report.capture_probability.size(), report.cautious_users.size());
  for (const double p : report.capture_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(report.attacker_benefit.count(), 8u);
  EXPECT_GT(report.attacker_benefit.mean(), 0.0);
  EXPECT_GE(report.mean_capture_rate, 0.0);
  EXPECT_LE(report.mean_capture_rate, 1.0);
  // Aggregate consistency: mean capture rate = mean of per-user probs.
  double sum = 0.0;
  for (const double p : report.capture_probability) sum += p;
  EXPECT_NEAR(report.mean_capture_rate,
              sum / static_cast<double>(report.capture_probability.size()),
              1e-9);
}

TEST(AssessTest, DeterministicGivenSeed) {
  const AccuInstance instance = facebook_like(0.3, 12);
  AttackModel model;
  model.budget = 40;
  model.trials = 5;
  const VulnerabilityReport a = assess(instance, model);
  const VulnerabilityReport b = assess(instance, model);
  EXPECT_EQ(a.capture_probability, b.capture_probability);
  EXPECT_DOUBLE_EQ(a.attacker_benefit.mean(), b.attacker_benefit.mean());
}

TEST(AssessTest, MostVulnerableIsSortedByRisk) {
  const AccuInstance instance = facebook_like(0.2, 13);
  AttackModel model;
  model.budget = 80;
  model.trials = 6;
  const VulnerabilityReport report = assess(instance, model);
  const auto top = report.most_vulnerable(5);
  ASSERT_LE(top.size(), 5u);
  auto prob_of = [&](NodeId v) {
    for (std::size_t i = 0; i < report.cautious_users.size(); ++i) {
      if (report.cautious_users[i] == v) return report.capture_probability[i];
    }
    return -1.0;
  };
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(prob_of(top[i - 1]), prob_of(top[i]));
  }
}

TEST(AssessTest, GatewayScoresIdentifyThresholdEnablers) {
  const AccuInstance instance = facebook_like(0.2, 17);
  AttackModel model;
  model.budget = 100;
  model.trials = 8;
  const VulnerabilityReport report = assess(instance, model);
  ASSERT_EQ(report.gateway_score.size(), instance.num_nodes());
  double total = 0.0;
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    EXPECT_GE(report.gateway_score[v], 0.0);
    // Only reckless users can be gateways (cautious users are pairwise
    // non-adjacent, so no cautious neighbor of a victim exists).
    if (instance.is_cautious(v)) {
      EXPECT_DOUBLE_EQ(report.gateway_score[v], 0.0);
    }
    total += report.gateway_score[v];
  }
  // Each captured victim contributes at least θ >= 1 gateway credits.
  const double expected_min_credits =
      report.mean_capture_rate * static_cast<double>(instance.num_cautious());
  EXPECT_GE(total + 1e-9, expected_min_credits);
  // top_gateways is sorted descending and omits zero scores.
  const auto top = report.top_gateways(10);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(report.gateway_score[top[i - 1]],
              report.gateway_score[top[i]]);
  }
  for (const NodeId v : top) EXPECT_GT(report.gateway_score[v], 0.0);
}

TEST(AssessTest, ZeroTrialsIsEmptyButValid) {
  const AccuInstance instance = facebook_like(0.3, 14);
  AttackModel model;
  model.trials = 0;
  const VulnerabilityReport report = assess(instance, model);
  EXPECT_EQ(report.attacker_benefit.count(), 0u);
  EXPECT_DOUBLE_EQ(report.mean_capture_rate, 0.0);
}

TEST(AssessTest, HigherThresholdsProtectMore) {
  AttackModel model;
  model.budget = 80;
  model.trials = 6;
  const VulnerabilityReport lax = assess(facebook_like(0.1, 15), model);
  const VulnerabilityReport strict = assess(facebook_like(0.6, 15), model);
  EXPECT_GE(lax.mean_capture_rate, strict.mean_capture_rate);
}

TEST(RecommendThresholdTest, PicksCheapestMeetingTarget) {
  AttackModel model;
  model.budget = 60;
  model.trials = 5;
  model.seed = 21;
  const ThresholdInstanceFactory factory = [](double theta,
                                              std::uint64_t seed) {
    return facebook_like(theta, seed + 50);
  };
  const ThresholdRecommendation rec = recommend_threshold(
      factory, {0.1, 0.3, 0.6, 0.9}, /*target_protection=*/0.5, model);
  EXPECT_TRUE(rec.target_met);
  EXPECT_GE(rec.protection_rate, 0.5);
  EXPECT_GT(rec.theta_fraction, 0.0);
}

TEST(RecommendThresholdTest, ImpossibleTargetReportsBestEffort) {
  AttackModel model;
  model.budget = 60;
  model.trials = 4;
  const ThresholdInstanceFactory factory = [](double theta,
                                              std::uint64_t seed) {
    return facebook_like(theta, seed + 60);
  };
  const ThresholdRecommendation rec =
      recommend_threshold(factory, {0.1, 0.3}, /*target_protection=*/1.01,
                          model);
  EXPECT_FALSE(rec.target_met);
  EXPECT_GT(rec.theta_fraction, 0.0);
}

TEST(RecommendThresholdTest, RejectsEmptyCandidates) {
  AttackModel model;
  const ThresholdInstanceFactory factory = [](double, std::uint64_t) {
    return facebook_like(0.3, 1);
  };
  EXPECT_THROW(recommend_threshold(factory, {}, 0.5, model),
               InvalidArgument);
}

}  // namespace
}  // namespace accu::defense
