// Tests for the multi-bot extension: coalition view bookkeeping (benefit
// union, per-bot mutual counts), per-bot cautious thresholds, round-robin
// scheduling, and the m = 1 reduction to single-bot ABM.

#include <gtest/gtest.h>

#include <numeric>

#include "core/multibot/multibot.hpp"
#include "core/strategies/abm.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Path 0-1-2-3, node 2 cautious with θ=2, everyone accepts; benefits 3/1.
AccuInstance path_instance() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 2, 1},
                      BenefitModel::uniform(4, 3.0, 1.0));
}

TEST(MultiBotViewTest, BenefitCountsUnionOnce) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  MultiBotView view(instance, 2);

  view.record_acceptance(0, 1, truth);
  // Friend of bot 0: B_f(1) + FOF {0, 2}.
  EXPECT_DOUBLE_EQ(view.current_benefit(), 5.0);
  EXPECT_EQ(view.friend_count(1), 1u);
  EXPECT_TRUE(view.is_fof(2));

  // The same user accepted by bot 1: no benefit change.
  view.record_acceptance(1, 1, truth);
  EXPECT_DOUBLE_EQ(view.current_benefit(), 5.0);
  EXPECT_EQ(view.friend_count(1), 2u);
  EXPECT_EQ(view.coalition_friends().size(), 1u);
  EXPECT_DOUBLE_EQ(view.recompute_benefit(), view.current_benefit());
}

TEST(MultiBotViewTest, MutualCountsArePerBot) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  MultiBotView view(instance, 2);
  view.record_acceptance(0, 1, truth);
  view.record_acceptance(1, 3, truth);
  EXPECT_EQ(view.mutual_friends(0, 2), 1u);  // via bot 0's friend 1
  EXPECT_EQ(view.mutual_friends(1, 2), 1u);  // via bot 1's friend 3
  // Neither bot alone reaches θ = 2 although the coalition covers both
  // neighbors — the structural disadvantage of splitting requests.
  EXPECT_FALSE(view.cautious_would_accept(0, 2));
  EXPECT_FALSE(view.cautious_would_accept(1, 2));
  // A single bot befriending both neighbors does reach it.
  view.record_acceptance(0, 3, truth);
  EXPECT_TRUE(view.cautious_would_accept(0, 2));
}

TEST(MultiBotViewTest, PerBotRequestLimit) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  MultiBotView view(instance, 2);
  view.record_acceptance(0, 1, truth);
  EXPECT_TRUE(view.is_requested_by(0, 1));
  EXPECT_FALSE(view.is_requested_by(1, 1));
  view.record_rejection(1, 0);
  EXPECT_EQ(view.request_state(1, 0), RequestState::kRejected);
  EXPECT_EQ(view.request_state(0, 0), RequestState::kUnknown);
  EXPECT_EQ(view.num_requests(), 2u);
}

TEST(MultiBotRealizationTest, CoinsPerBot) {
  const AccuInstance instance = path_instance();
  util::Rng rng(1);
  const MultiBotRealization truth =
      MultiBotRealization::sample(instance, 3, rng);
  EXPECT_EQ(truth.num_bots(), 3u);
  // Bot 0 reuses the base coins.
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(truth.reckless_accepts(0, u),
              truth.edges().reckless_accepts(u));
  }
}

TEST(MultiBotSimulatorTest, SingleBotMatchesSequentialAbm) {
  util::Rng rng(2);
  graph::GraphBuilder b = graph::barabasi_albert(50, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(50, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(50, 1);
  for (NodeId v = 5; v < 50; ++v) {
    if (g.degree(v) >= 3) {
      classes[v] = UserClass::kCautious;
      thresholds[v] = 2;
      break;
    }
  }
  std::vector<double> q(50);
  for (auto& x : q) x = 0.3 + 0.7 * rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::paper_default(classes));
  const Realization single = Realization::sample(instance, rng);
  const MultiBotRealization multi =
      MultiBotRealization::from_single(instance, single);

  AbmStrategy abm(0.5, 0.5);
  util::Rng ra(1);
  const SimulationResult a = simulate(instance, single, abm, 20, ra);

  MultiBotAbm coalition({0.5, 0.5});
  util::Rng rb(1);
  const MultiBotResult m =
      simulate_multibot(instance, multi, coalition, 20, 1, rb);

  ASSERT_EQ(m.trace.size(), a.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(m.trace[i].target, a.trace[i].target) << "request " << i;
    EXPECT_EQ(m.trace[i].accepted, a.trace[i].accepted);
  }
  EXPECT_DOUBLE_EQ(m.total_benefit, a.total_benefit);
  EXPECT_EQ(m.rounds, 20u);  // one request per round with a single bot
}

TEST(MultiBotSimulatorTest, RoundRobinInterleavesBots) {
  const AccuInstance instance = path_instance();
  util::Rng rng(3);
  const MultiBotRealization truth =
      MultiBotRealization::sample(instance, 2, rng);
  MultiBotAbm coalition({1.0, 0.0});
  util::Rng rs(1);
  const MultiBotResult result =
      simulate_multibot(instance, truth, coalition, 4, 2, rs);
  ASSERT_GE(result.trace.size(), 2u);
  EXPECT_EQ(result.trace[0].bot, 0u);
  EXPECT_EQ(result.trace[1].bot, 1u);
  EXPECT_LE(result.rounds, 4u);
}

TEST(MultiBotSimulatorTest, BudgetIsSharedAcrossBots) {
  const AccuInstance instance = path_instance();
  util::Rng rng(4);
  const MultiBotRealization truth =
      MultiBotRealization::sample(instance, 3, rng);
  MultiBotAbm coalition({0.5, 0.5});
  util::Rng rs(1);
  const MultiBotResult result =
      simulate_multibot(instance, truth, coalition, 5, 3, rs);
  EXPECT_LE(result.trace.size(), 5u);
}

TEST(MultiBotAbmTest, SecondFriendshipHasNoDirectGain) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  MultiBotView view(instance, 2);
  view.record_acceptance(0, 1, truth);
  EXPECT_DOUBLE_EQ(MultiBotAbm::direct_gain(view, 1), 0.0);
  // The second bot gets indirect value toward cautious user 2 (mutual 0,
  // θ = 2 ⇒ upgrade gain 2 halved).
  EXPECT_DOUBLE_EQ(MultiBotAbm::indirect_gain(1, view, 1), 1.0);
  // Bot 0's own mutual count with node 2 is already 1, so the proximity
  // denominator for its *remaining* neighbor shrinks to 1 (evaluated here
  // on node 1 purely as the scoring function — ABM never re-requests it).
  EXPECT_DOUBLE_EQ(MultiBotAbm::indirect_gain(0, view, 1), 2.0);
}

TEST(MultiBotAbmTest, PassesWhenNothingUseful) {
  // Once every user is a coalition friend, no bot has positive potential
  // and the simulation ends early instead of burning the remaining budget.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const AccuInstance instance(b.build(), std::vector<UserClass>(3),
                              std::vector<double>(3, 1.0),
                              std::vector<std::uint32_t>(3, 1),
                              BenefitModel::uniform(3, 2.0, 1.0));
  util::Rng rng(5);
  const MultiBotRealization truth =
      MultiBotRealization::sample(instance, 2, rng);
  MultiBotAbm coalition({0.5, 0.5});
  util::Rng rs(1);
  const MultiBotResult result =
      simulate_multibot(instance, truth, coalition, 10, 2, rs);
  // Bot 0 takes the hub, bot 1 takes a leaf, bot 0 takes the last node;
  // afterwards every potential is 0 and both bots pass.
  EXPECT_EQ(result.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(result.total_benefit, 6.0);
  EXPECT_EQ(result.rounds, 2u);
}

// Fuzz: random request sequences keep the coalition bookkeeping exactly
// consistent with the O(V) recomputation, across bot counts.
class MultiBotFuzzTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiBotFuzzTest, BenefitBookkeepingMatchesRecompute) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(30, 0.15, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(30, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(30, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < 30 && cautious.size() < 3; ++v) {
    if (g.degree(v) < 2) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(30);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(30, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  const BotId bots = 3;
  MultiBotView view(instance, bots);
  for (int step = 0; step < 40; ++step) {
    const auto bot = static_cast<BotId>(rng.index(bots));
    const auto v = static_cast<NodeId>(rng.index(30));
    if (view.is_requested_by(bot, v)) continue;
    if (rng.bernoulli(0.6)) {
      view.record_acceptance(bot, v, truth);
    } else {
      view.record_rejection(bot, v);
    }
    ASSERT_NEAR(view.current_benefit(), view.recompute_benefit(), 1e-9)
        << "step " << step;
    // Spot-check per-bot mutual counters against a direct scan.
    for (NodeId w = 0; w < 30; ++w) {
      std::uint32_t expected = 0;
      for (const graph::Neighbor& nb : g.neighbors(w)) {
        if (truth.edge_present(nb.edge) && view.is_friend_of(bot, nb.node)) {
          ++expected;
        }
      }
      ASSERT_EQ(view.mutual_friends(bot, w), expected) << "node " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiBotFuzzTest,
                         testing::Values(401u, 402u, 403u, 404u));

}  // namespace
}  // namespace accu
