// Crash-point enumeration: the durability control plane's acceptance test.
//
// For a small direct sweep and an in-process served job, simulate a power
// loss at *every* durable-op boundary (open / write / fsync / rename /
// dir-fsync) under both durability modes, then recover against the
// materialized crash state and assert the resumed run's final report is
// bit-identical to an uninterrupted run.  Scripted ENOSPC and fsync
// failures must additionally fail-stop with their dedicated exit codes /
// exception types while leaving a resumable checkpoint behind.
//
// The daemon-process variant of this property (kill -9 between daemon
// sessions) lives in tools/ci.sh; here the served job runs in-process via
// run_job_shard + merge so every boundary is enumerable deterministically.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/instance_io.hpp"
#include "core/report.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "serve/job.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/io_env.hpp"

#ifdef ACCU_HAVE_POSIX_IO

namespace accu {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::error_code ec;
  fs::remove_all(path, ec);
  fs::create_directories(path);
  return path;
}

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.03;
    config.num_cautious = 5;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

util::DurabilityPolicy policy_for(util::DurabilityPolicy::Mode mode) {
  util::DurabilityPolicy policy;
  policy.mode = mode;
  policy.group_cells = 3;
  // Keep the time bound out of the way: the op sequence must be identical
  // across enumeration passes, so only the cell bound may trigger syncs.
  policy.group_ms = 600000;
  return policy;
}

ExperimentConfig direct_config(util::DurabilityPolicy::Mode mode,
                               const std::string& checkpoint) {
  ExperimentConfig config;
  config.budget = 8;
  config.samples = 2;
  config.runs = 2;
  config.seed = 7;
  config.threads = 1;
  config.checkpoint_path = checkpoint;
  config.durability = policy_for(mode);
  return config;
}

std::string report_of(const ExperimentResult& result,
                      const ExperimentConfig& config) {
  std::ostringstream os;
  ReportOptions options;
  options.title = "crashpoint";
  write_markdown_report(result, config, os, options);
  return os.str();
}

/// Reference report for the direct sweep: one uninterrupted run.
std::string direct_reference(util::DurabilityPolicy::Mode mode) {
  const std::string dir = fresh_dir("crashpoint_ref");
  const ExperimentConfig config = direct_config(mode, dir + "/sweep.ckpt");
  const ExperimentResult result =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_TRUE(result.failures.empty());
  return report_of(result, config);
}

void enumerate_direct(util::DurabilityPolicy::Mode mode) {
  const std::string reference = direct_reference(mode);

  // Pass 1: count the durable-op boundaries of a clean run.
  std::uint64_t total_ops = 0;
  {
    const std::string dir = fresh_dir("crashpoint_probe");
    util::FaultyFs probe;
    util::ScopedIoEnv scoped(probe);
    const ExperimentConfig config = direct_config(mode, dir + "/sweep.ckpt");
    (void)run_experiment(tiny_factory(), two_strategies(), config);
    total_ops = probe.op_count();
  }
  ASSERT_GE(total_ops, 8u);

  // Pass 2: crash at every boundary, recover, resume, compare.
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    const std::string dir = fresh_dir("crashpoint_direct");
    const std::string ckpt = dir + "/sweep.ckpt";
    const ExperimentConfig config = direct_config(mode, ckpt);
    util::FaultyFs faulty;
    {
      util::ScopedIoEnv scoped(faulty);
      faulty.crash_at(k);
      EXPECT_THROW(
          (void)run_experiment(tiny_factory(), two_strategies(), config),
          IoError)
          << "mode " << config.durability.mode_name() << " crash op " << k;
      faulty.materialize_crash_state();
    }
    // Recovery under the real environment: load → truncate-to-valid-prefix
    // → resume → identical report.
    const ExperimentResult resumed =
        run_experiment(tiny_factory(), two_strategies(), config);
    EXPECT_TRUE(resumed.failures.empty()) << "crash op " << k;
    EXPECT_EQ(report_of(resumed, config), reference)
        << "mode " << config.durability.mode_name() << " crash op " << k;
  }
}

TEST(CrashPointTest, DirectSweepStrictSurvivesEveryBoundary) {
  enumerate_direct(util::DurabilityPolicy::Mode::kStrict);
}

TEST(CrashPointTest, DirectSweepGroupedSurvivesEveryBoundary) {
  enumerate_direct(util::DurabilityPolicy::Mode::kGrouped);
}

// ---------------------------------------------------------------------------
// Served job (in-process shard runner + merge + report).

serve::JobSpec served_spec(const std::string& instance_path,
                           const char* durability) {
  serve::JobSpec spec;
  spec.kind = "compare";
  spec.instance = instance_path;
  spec.budget = 5;
  spec.runs = 3;
  spec.seed = 11;
  spec.threads = 1;
  spec.durability = durability;
  spec.group_cells = 2;
  spec.group_ms = 600000;
  return spec;
}

std::string served_report(const std::string& job_dir) {
  const ShardMergeOutcome merged = merge_shard_checkpoints(
      {job_dir + "/shard0.ckpt"}, job_dir + "/merged.ckpt");
  EXPECT_EQ(merged.cells_missing, 0u);
  return report_of(merged.result, merged.config);
}

void enumerate_served(const char* durability) {
  const std::string instance_path =
      testing::TempDir() + "crashpoint_instance.accu";
  {
    util::Rng rng(3);
    datasets::DatasetConfig config;
    config.scale = 0.03;
    config.num_cautious = 5;
    write_instance_file(datasets::make_dataset("facebook", config, rng),
                        instance_path);
  }
  const serve::JobSpec spec = served_spec(instance_path, durability);

  std::string reference;
  {
    const std::string dir = fresh_dir("crashpoint_served_ref");
    ASSERT_EQ(run_job_shard(spec, dir, 0, 1, nullptr),
              util::exit_code::kOk);
    reference = served_report(dir);
  }

  std::uint64_t total_ops = 0;
  {
    const std::string dir = fresh_dir("crashpoint_served_probe");
    util::FaultyFs probe;
    util::ScopedIoEnv scoped(probe);
    ASSERT_EQ(run_job_shard(spec, dir, 0, 1, nullptr),
              util::exit_code::kOk);
    total_ops = probe.op_count();
  }
  ASSERT_GE(total_ops, 8u);

  // The shard's op sequence includes throttled (wall-clock dependent)
  // progress writes, so a crash index may land past the ops a given run
  // performs — that run then completes cleanly, which is fine: the
  // property under test is that *whatever* the boundary hit, recovery
  // converges to the reference report.
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    const std::string dir = fresh_dir("crashpoint_served");
    util::FaultyFs faulty;
    int rc;
    {
      util::ScopedIoEnv scoped(faulty);
      faulty.crash_at(k);
      rc = run_job_shard(spec, dir, 0, 1, nullptr);
      faulty.materialize_crash_state();
    }
    if (rc != util::exit_code::kOk) {
      EXPECT_EQ(run_job_shard(spec, dir, 0, 1, nullptr),
                util::exit_code::kOk)
          << durability << " crash op " << k;
    }
    EXPECT_EQ(served_report(dir), reference)
        << durability << " crash op " << k;
  }
}

TEST(CrashPointTest, ServedJobStrictSurvivesEveryBoundary) {
  enumerate_served("strict");
}

TEST(CrashPointTest, ServedJobGroupedSurvivesEveryBoundary) {
  enumerate_served("grouped");
}

// ---------------------------------------------------------------------------
// Dedicated failure codes: ENOSPC and fsyncgate fail-stop, resumably.

TEST(CrashPointTest, EnospcFailsStopWithDedicatedCodeAndResumes) {
  const std::string reference =
      direct_reference(util::DurabilityPolicy::Mode::kStrict);
  const std::string dir = fresh_dir("crashpoint_enospc");
  const ExperimentConfig config =
      direct_config(util::DurabilityPolicy::Mode::kStrict,
                    dir + "/sweep.ckpt");
  util::FaultyFs faulty;
  {
    util::ScopedIoEnv scoped(faulty);
    // Enough budget for the header and a few cells, then the disk fills.
    faulty.disk_budget(256);
    EXPECT_THROW(
        (void)run_experiment(tiny_factory(), two_strategies(), config),
        DiskFullError);
    faulty.materialize_crash_state();
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_TRUE(resumed.failures.empty());
  EXPECT_EQ(report_of(resumed, config), reference);
}

TEST(CrashPointTest, FsyncFailureFailsStopWithDedicatedCodeAndResumes) {
  const std::string reference =
      direct_reference(util::DurabilityPolicy::Mode::kStrict);
  const std::string dir = fresh_dir("crashpoint_fsyncgate");
  const ExperimentConfig config =
      direct_config(util::DurabilityPolicy::Mode::kStrict,
                    dir + "/sweep.ckpt");
  util::FaultyFs faulty;
  {
    util::ScopedIoEnv scoped(faulty);
    faulty.fail_fsync(5);  // mid-run: past the header, before the last cell
    EXPECT_THROW(
        (void)run_experiment(tiny_factory(), two_strategies(), config),
        SyncFailedError);
    faulty.materialize_crash_state();
  }
  const ExperimentResult resumed =
      run_experiment(tiny_factory(), two_strategies(), config);
  EXPECT_TRUE(resumed.failures.empty());
  EXPECT_EQ(report_of(resumed, config), reference);
}

TEST(CrashPointTest, ServedShardMapsIoFailuresToDedicatedExitCodes) {
  const std::string instance_path =
      testing::TempDir() + "crashpoint_codes_instance.accu";
  {
    util::Rng rng(3);
    datasets::DatasetConfig config;
    config.scale = 0.03;
    config.num_cautious = 5;
    write_instance_file(datasets::make_dataset("facebook", config, rng),
                        instance_path);
  }
  const serve::JobSpec spec = served_spec(instance_path, "strict");
  {
    const std::string dir = fresh_dir("crashpoint_codes_enospc");
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.disk_budget(512);
    EXPECT_EQ(run_job_shard(spec, dir, 0, 1, nullptr),
              util::exit_code::kDiskFull);
  }
  {
    const std::string dir = fresh_dir("crashpoint_codes_sync");
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.fail_fsync(4);
    EXPECT_EQ(run_job_shard(spec, dir, 0, 1, nullptr),
              util::exit_code::kSyncLost);
  }
}

}  // namespace
}  // namespace accu

#endif  // ACCU_HAVE_POSIX_IO
