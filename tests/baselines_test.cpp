// Tests for the comparison baselines: ordering logic, exhaustion behaviour,
// and the Random baseline's uniformity.

#include <gtest/gtest.h>

#include "core/strategies/baselines.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Star with center 0 (degree 4, all edge probs 1) plus a two-node chain
/// 5-6 with low-probability edge.
AccuInstance star_instance() {
  graph::GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(0, 4);
  b.add_edge(5, 6, 0.1);
  return AccuInstance(b.build(), std::vector<UserClass>(7),
                      std::vector<double>(7, 1.0),
                      std::vector<std::uint32_t>(7, 1),
                      BenefitModel::uniform(7, 2.0, 1.0));
}

TEST(MaxDegreeTest, PicksByExpectedDegree) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  MaxDegreeStrategy strategy;
  util::Rng rng(1);
  const SimulationResult result = simulate(instance, truth, strategy, 3, rng);
  // Expected degrees: 0 → 4; leaves → 1; 5,6 → 0.1.
  EXPECT_EQ(result.trace[0].target, 0u);
  // Next four are the degree-1 leaves in id order (stable tie-break).
  EXPECT_EQ(result.trace[1].target, 1u);
  EXPECT_EQ(result.trace[2].target, 2u);
}

TEST(MaxDegreeTest, ExhaustsAllNodes) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  MaxDegreeStrategy strategy;
  util::Rng rng(2);
  const SimulationResult result =
      simulate(instance, truth, strategy, 100, rng);
  EXPECT_EQ(result.trace.size(), 7u);  // stops when everyone was requested
}

TEST(PageRankTest, CenterFirstOnStar) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  PageRankStrategy strategy;
  util::Rng rng(3);
  const SimulationResult result = simulate(instance, truth, strategy, 1, rng);
  EXPECT_EQ(result.trace[0].target, 0u);
}

TEST(PageRankTest, NameAndDegreeNameDiffer) {
  EXPECT_EQ(PageRankStrategy{}.name(), "PageRank");
  EXPECT_EQ(MaxDegreeStrategy{}.name(), "MaxDegree");
  EXPECT_EQ(RandomStrategy{}.name(), "Random");
}

TEST(RandomTest, RequestsAreDistinctAndComplete) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  RandomStrategy strategy;
  util::Rng rng(4);
  const SimulationResult result =
      simulate(instance, truth, strategy, 7, rng);
  std::vector<NodeId> targets;
  for (const RequestRecord& r : result.trace) targets.push_back(r.target);
  std::sort(targets.begin(), targets.end());
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(targets[v], v);
}

TEST(RandomTest, FirstPickIsUniform) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  std::vector<int> counts(7, 0);
  util::Rng rng(5);
  const int trials = 14000;
  for (int i = 0; i < trials; ++i) {
    RandomStrategy strategy;
    const SimulationResult result =
        simulate(instance, truth, strategy, 1, rng);
    ++counts[result.trace[0].target];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 7.0, 0.02);
  }
}

TEST(RandomTest, DeterministicGivenRngStream) {
  const AccuInstance instance = star_instance();
  const Realization truth = Realization::certain(instance);
  util::Rng rng_a(6), rng_b(6);
  RandomStrategy sa, sb;
  const SimulationResult a = simulate(instance, truth, sa, 5, rng_a);
  const SimulationResult b = simulate(instance, truth, sb, 5, rng_b);
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target);
  }
}

}  // namespace
}  // namespace accu
