// Tests for the DOT exporter, the forest-fire generator, and fuzz-style
// round trips of graph/instance serialization over random generator
// outputs.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace accu::graph {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.25);
  b.add_edge(0, 2, 1.0);
  return b.build();
}

TEST(DotTest, BasicStructure) {
  std::ostringstream os;
  write_dot(triangle(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph accu {"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("n1 -- n2"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n2"), std::string::npos);
  EXPECT_EQ(out.find("label"), std::string::npos);  // no probs by default
  EXPECT_EQ(out.back(), '\n');
}

TEST(DotTest, ProbabilitiesAndAttributes) {
  DotOptions options;
  options.name = "attack";
  options.edge_probabilities = true;
  options.node_attributes = [](NodeId v) {
    return v == 0 ? std::string("color=red") : std::string();
  };
  options.edge_attributes = [](EdgeId e) {
    return e == 0 ? std::string("style=dashed") : std::string();
  };
  std::ostringstream os;
  write_dot(triangle(), os, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph attack {"), std::string::npos);
  EXPECT_NE(out.find("n0 [color=red];"), std::string::npos);
  EXPECT_NE(out.find("label=\"0.50\",style=dashed"), std::string::npos);
  EXPECT_NE(out.find("label=\"0.25\""), std::string::npos);
}

TEST(DotTest, FileWriteAndMissingDirectory) {
  const std::string path = testing::TempDir() + "accu_dot_test.dot";
  write_dot_file(triangle(), path);
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
  EXPECT_THROW(write_dot_file(triangle(), "/nonexistent/dir/x.dot"),
               IoError);
}

TEST(ForestFireTest, ConnectedAndSimple) {
  util::Rng rng(1);
  const Graph g = forest_fire(500, 0.35, rng).build();
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(connected_components(g).count, 1u);  // every arrival links
  EXPECT_GE(g.num_edges(), 499u);                // at least a tree
}

TEST(ForestFireTest, ForwardProbabilityDensifies) {
  util::Rng rng1(2), rng2(2);
  const Graph sparse = forest_fire(800, 0.1, rng1).build();
  const Graph dense = forest_fire(800, 0.45, rng2).build();
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
}

TEST(ForestFireTest, ZeroForwardIsATree) {
  util::Rng rng(3);
  const Graph g = forest_fire(200, 0.0, rng).build();
  EXPECT_EQ(g.num_edges(), 199u);
}

TEST(ForestFireTest, RejectsBadParameters) {
  util::Rng rng(4);
  EXPECT_THROW(forest_fire(1, 0.3, rng), InvalidArgument);
  EXPECT_THROW(forest_fire(10, 1.0, rng), InvalidArgument);
}

TEST(ForestFireTest, Deterministic) {
  util::Rng a(5), b(5);
  const Graph ga = forest_fire(150, 0.3, a).build();
  const Graph gb = forest_fire(150, 0.3, b).build();
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    const EdgeEndpoints ep = ga.endpoints(e);
    EXPECT_TRUE(gb.has_edge(ep.lo, ep.hi));
  }
}

// Fuzz: edge-list round trips across every generator family.
class IoFuzzTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzzTest, EdgeListRoundTripsExactly) {
  util::Rng rng(GetParam());
  GraphBuilder b = [&]() -> GraphBuilder {
    switch (GetParam() % 4) {
      case 0:
        return erdos_renyi(60, 0.08, rng);
      case 1:
        return barabasi_albert(60, 2, rng);
      case 2:
        return forest_fire(60, 0.3, rng);
      default:
        return watts_strogatz(60, 3, 0.2, rng);
    }
  }();
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeEndpoints ep = g.endpoints(e);
    const auto mirrored = back.find_edge(ep.lo, ep.hi);
    ASSERT_TRUE(mirrored.has_value());
    EXPECT_DOUBLE_EQ(back.edge_prob(*mirrored), g.edge_prob(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest,
                         testing::Values(101u, 102u, 103u, 104u, 105u, 106u,
                                         107u, 108u));

}  // namespace
}  // namespace accu::graph
