// Tests for the serve daemon stack: journal corruption handling (bit rot,
// torn tails, duplicated records), CRC-guarded job descriptors, admission
// control, the experiment progress hook, and the daemon itself — including
// the headline crash drill: SIGKILL the daemon mid-sweep, restart it, and
// demand a merged report bit-identical to a direct uninterrupted run.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/instance_io.hpp"
#include "core/report.hpp"
#include "datasets/datasets.hpp"
#include "serve/admission.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/lockfile.hpp"

namespace accu::serve {
namespace {

// The forked child daemon in the lock test needs a SIGTERM-driven drain;
// sig_atomic_t written from a handler is the only portable option.
volatile std::sig_atomic_t g_test_stop = 0;
void test_stop_handler(int) { g_test_stop = 1; }

namespace fs = std::filesystem;
namespace exit_code = util::exit_code;

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::error_code ec;
  fs::remove_all(path, ec);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  ASSERT_TRUE(os.good());
}

// ---------------------------------------------------------------------------
// Journal

TEST(ServeJournalTest, RoundTripPreservesRecordsAndVerifies) {
  const std::string path = temp_path("serve_journal_rt");
  JobJournal journal;
  const JournalLoad fresh = journal.open(path);
  EXPECT_TRUE(fresh.records.empty());
  journal.append("submit", {"job0001", "2"});
  journal.append("start", {"job0001", "0", "4242"});
  journal.append("shard-done", {"job0001", "0", "0"});
  journal.append("drain");

  const JournalLoad load = read_journal(path);
  ASSERT_EQ(load.records.size(), 4u);
  EXPECT_EQ(load.records[0].verb, "submit");
  EXPECT_EQ(load.records[0].args,
            (std::vector<std::string>{"job0001", "2"}));
  EXPECT_EQ(load.records[1].verb, "start");
  EXPECT_EQ(load.records[3].verb, "drain");
  EXPECT_EQ(load.valid_end, load.file_size) << "clean file verifies fully";
}

TEST(ServeJournalTest, MissingFileLoadsEmpty) {
  const JournalLoad load = read_journal(temp_path("serve_journal_missing"));
  EXPECT_FALSE(load.existed);
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.valid_end, 0u);
}

TEST(ServeJournalTest, TornTailIsTruncatedOnOpen) {
  const std::string path = temp_path("serve_journal_torn");
  {
    JobJournal journal;
    journal.open(path);
    journal.append("submit", {"job0001", "1"});
    journal.append("start", {"job0001", "0", "77"});
  }
  const std::uint64_t intact = read_journal(path).valid_end;
  {
    // A crash mid-append: half a record, no newline.
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << "shard-done job0001 0";
  }
  const JournalLoad damaged = read_journal(path);
  EXPECT_EQ(damaged.records.size(), 2u);
  EXPECT_EQ(damaged.valid_end, intact);
  EXPECT_LT(damaged.valid_end, damaged.file_size);

  // Re-opening repairs the file in place and appending works again.
  JobJournal journal;
  const JournalLoad reopened = journal.open(path);
  EXPECT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(fs::file_size(path), intact);
  journal.append("shard-done", {"job0001", "0", "0"});
  EXPECT_EQ(read_journal(path).records.size(), 3u);
}

TEST(ServeJournalTest, BitRotTruncatesAtFirstBadRecord) {
  const std::string path = temp_path("serve_journal_bitrot");
  {
    JobJournal journal;
    journal.open(path);
    journal.append("submit", {"job0001", "1"});
    journal.append("start", {"job0001", "0", "77"});
    journal.append("shard-done", {"job0001", "0", "0"});
  }
  std::string content = read_file(path);
  // Flip one payload byte of the middle record.
  const std::size_t pos = content.find("start job0001");
  ASSERT_NE(pos, std::string::npos);
  content[pos] = 'x';
  write_file(path, content);

  // Everything from the damaged record on is dropped — even the final
  // record, whose own CRC still verifies: append order is the truth.
  const JournalLoad load = read_journal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].verb, "submit");
  EXPECT_LT(load.valid_end, load.file_size);

  JobJournal journal;
  journal.open(path);
  EXPECT_EQ(fs::file_size(path), load.valid_end);
}

TEST(ServeJournalTest, DamagedHeaderDiscardsTheFile) {
  const std::string path = temp_path("serve_journal_header");
  {
    JobJournal journal;
    journal.open(path);
    journal.append("submit", {"job0001", "1"});
  }
  std::string content = read_file(path);
  content[0] = '!';
  write_file(path, content);
  const JournalLoad load = read_journal(path);
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.valid_end, 0u);

  // Open starts a fresh journal rather than appending after garbage.
  JobJournal journal;
  const JournalLoad reopened = journal.open(path);
  EXPECT_TRUE(reopened.records.empty());
  journal.append("submit", {"job0002", "1"});
  EXPECT_EQ(read_journal(path).records.size(), 1u);
}

TEST(ServeJournalTest, ReplayIsIdempotentUnderDuplicatedRecords) {
  std::vector<JournalRecord> records = {
      {"submit", {"job0001", "2"}},
      {"submit", {"job0001", "2"}},  // duplicated submit
      {"start", {"job0001", "0", "100"}},
      {"shard-done", {"job0001", "0", "0"}},
      {"shard-done", {"job0001", "0", "0"}},  // duplicated completion
      {"start", {"job0001", "1", "101"}},
      {"shard-done", {"job0001", "1", "0"}},
      {"done", {"job0001", "0"}},
      {"done", {"job0001", "0"}},  // duplicated terminal record
  };
  const ReplayState state = replay_journal(records);
  ASSERT_EQ(state.jobs.size(), 1u);
  const ReplayedJob& job = state.jobs.at("job0001");
  EXPECT_EQ(job.state, ReplayedJob::State::kDone);
  EXPECT_EQ(job.shards, 2u);
  EXPECT_TRUE(job.shard_done[0]);
  EXPECT_TRUE(job.shard_done[1]);
  EXPECT_EQ(job.crashes, 0u);
}

TEST(ServeJournalTest, ReplayTracksCrashesQuarantineAndOrphanPids) {
  const ReplayState state = replay_journal({
      {"submit", {"job0001", "1"}},
      {"start", {"job0001", "0", "500"}},
      {"crash", {"job0001", "0", "1"}},
      {"start", {"job0001", "0", "501"}},
      {"submit", {"job0002", "1"}},
      {"start", {"job0002", "0", "600"}},
      {"crash", {"job0002", "0", "1"}},
      {"crash", {"job0002", "0", "1"}},
      {"quarantine", {"job0002"}},
      {"bogus-verb", {"ignored"}},  // unknown verbs skip cleanly
  });
  ASSERT_EQ(state.jobs.size(), 2u);
  const ReplayedJob& running = state.jobs.at("job0001");
  EXPECT_EQ(running.state, ReplayedJob::State::kRunning);
  EXPECT_EQ(running.crashes, 1u);
  EXPECT_EQ(running.shard_pid[0], 501) << "last journaled pid survives "
                                          "for orphan recovery";
  const ReplayedJob& poisoned = state.jobs.at("job0002");
  EXPECT_EQ(poisoned.state, ReplayedJob::State::kQuarantined);
  EXPECT_EQ(poisoned.crashes, 2u);
}

TEST(ServeJournalTest, RecordArgumentsMayNotContainWhitespace) {
  EXPECT_THROW((void)format_journal_record("fail", {"job0001", "two words"}),
               InvalidArgument);
  EXPECT_THROW((void)format_journal_record("bad verb", {}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Job descriptors

JobSpec sample_spec() {
  JobSpec spec;
  spec.kind = "sweep";
  spec.dataset = "facebook";
  spec.scale = 0.031;
  spec.cautious = 7;
  spec.budget = 9;
  spec.samples = 2;
  spec.runs = 13;
  spec.seed = 987654321;
  spec.fault_rate = 0.125;
  spec.suspension_rounds = 4;
  spec.retry = "exp";
  spec.feedback = "batched";
  spec.feedback_delay = 6;
  spec.cell_deadline_ms = 1500;
  spec.max_cell_retries = 2;
  spec.deadline_ms = 60000;
  spec.threads = 2;
  spec.cell_threads = 3;
  spec.simd = "scalar";
  spec.durability = "grouped";
  spec.group_cells = 9;
  spec.group_ms = 250;
  return spec;
}

/// Rewrites a descriptor body and re-stamps a valid CRC, for tests that
/// need *semantic* damage to survive the integrity check.
std::string restamp(std::string body, const std::string& from,
                    const std::string& to) {
  const std::size_t crc_pos = body.rfind("crc=");
  EXPECT_NE(crc_pos, std::string::npos);
  std::string payload = body.substr(0, crc_pos);
  const std::size_t hit = payload.find(from);
  EXPECT_NE(hit, std::string::npos);
  payload.replace(hit, from.size(), to);
  char trailer[24];
  std::snprintf(trailer, sizeof trailer, "crc=%08x\n", util::crc32(payload));
  return payload + trailer;
}

TEST(ServeJobTest, DescriptorRoundTripsEveryField) {
  const JobSpec spec = sample_spec();
  const JobSpec parsed = parse_job(serialize_job(spec));
  EXPECT_EQ(parsed.kind, spec.kind);
  EXPECT_EQ(parsed.dataset, spec.dataset);
  EXPECT_DOUBLE_EQ(parsed.scale, spec.scale);
  EXPECT_EQ(parsed.cautious, spec.cautious);
  EXPECT_EQ(parsed.budget, spec.budget);
  EXPECT_EQ(parsed.samples, spec.samples);
  EXPECT_EQ(parsed.runs, spec.runs);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_DOUBLE_EQ(parsed.fault_rate, spec.fault_rate);
  EXPECT_EQ(parsed.suspension_rounds, spec.suspension_rounds);
  EXPECT_EQ(parsed.retry, spec.retry);
  EXPECT_EQ(parsed.feedback, spec.feedback);
  EXPECT_EQ(parsed.feedback_delay, spec.feedback_delay);
  EXPECT_EQ(parsed.cell_deadline_ms, spec.cell_deadline_ms);
  EXPECT_EQ(parsed.max_cell_retries, spec.max_cell_retries);
  EXPECT_EQ(parsed.deadline_ms, spec.deadline_ms);
  EXPECT_EQ(parsed.threads, spec.threads);
  EXPECT_EQ(parsed.cell_threads, spec.cell_threads);
  EXPECT_EQ(parsed.simd, spec.simd);
  EXPECT_EQ(parsed.durability, spec.durability);
  EXPECT_EQ(parsed.group_cells, spec.group_cells);
  EXPECT_EQ(parsed.group_ms, spec.group_ms);
}

TEST(ServeJobTest, UnknownSimdSpellingIsRejectedAtAdmission) {
  // Spelling is validated eagerly; foreign-but-known ISA names must pass
  // (descriptors travel between architectures; support is checked by the
  // executing host at sweep start).
  const std::string body = serialize_job(sample_spec());
  EXPECT_THROW((void)parse_job(restamp(body, "simd=scalar", "simd=sse9")),
               InvalidArgument);
  const JobSpec neon = parse_job(restamp(body, "simd=scalar", "simd=neon"));
  EXPECT_EQ(neon.simd, "neon");
}

TEST(ServeJobTest, BitFlippedDescriptorIsRejected) {
  std::string body = serialize_job(sample_spec());
  const std::size_t pos = body.find("runs=13");
  ASSERT_NE(pos, std::string::npos);
  body[pos + 5] = '9';  // runs=93, CRC not re-stamped
  EXPECT_THROW((void)parse_job(body), IoError);
}

TEST(ServeJobTest, MissingOrMalformedCrcTrailerIsRejected) {
  std::string body = serialize_job(sample_spec());
  const std::size_t crc_pos = body.rfind("crc=");
  EXPECT_THROW((void)parse_job(body.substr(0, crc_pos)), IoError);
  std::string bad_hex = body;
  bad_hex.replace(crc_pos, std::string::npos, "crc=zzzz\n");
  EXPECT_THROW((void)parse_job(bad_hex), IoError);
}

TEST(ServeJobTest, UnknownKeysFailEvenWithAValidCrc) {
  const std::string body =
      restamp(serialize_job(sample_spec()), "dataset=", "datasset=");
  EXPECT_THROW((void)parse_job(body), InvalidArgument);
}

TEST(ServeJobTest, InvalidKindAndMissingInstanceAreRejected) {
  EXPECT_THROW(
      (void)parse_job(restamp(serialize_job(sample_spec()), "kind=sweep",
                              "kind=bogus")),
      InvalidArgument);
  JobSpec compare = sample_spec();
  compare.kind = "compare";
  compare.instance = "";
  EXPECT_THROW((void)parse_job(serialize_job(compare)), InvalidArgument);
}

TEST(ServeJobTest, MisspelledDurabilityKeyGetsADidYouMeanHint) {
  const std::string body =
      restamp(serialize_job(sample_spec()), "durability=", "durabilty=");
  try {
    (void)parse_job(body);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --durability"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeJobTest, UnknownDurabilityModeIsRejected) {
  EXPECT_THROW((void)parse_job(restamp(serialize_job(sample_spec()),
                                       "durability=grouped",
                                       "durability=eventual")),
               InvalidArgument);
}

TEST(ServeJobTest, OutOfRangeGroupKnobsAreRejected) {
  EXPECT_THROW((void)parse_job(restamp(serialize_job(sample_spec()),
                                       "group-cells=9", "group-cells=0")),
               InvalidArgument);
  EXPECT_THROW((void)parse_job(restamp(serialize_job(sample_spec()),
                                       "group-ms=250", "group-ms=9999999")),
               InvalidArgument);
  // A value that overflows 64-bit parsing is an *out-of-range* error, not
  // a silent wrap.
  EXPECT_THROW(
      (void)parse_job(restamp(serialize_job(sample_spec()), "group-cells=9",
                              "group-cells=99999999999999999999999")),
      InvalidArgument);
}

TEST(ServeJobTest, FeedbackModelIsValidatedAtAdmission) {
  // A misspelled model name fails at parse time with a did-you-mean hint —
  // before the job reaches the daemon's queue.
  try {
    (void)parse_job(restamp(serialize_job(sample_spec()), "feedback=batched",
                            "feedback=bathced"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'batched'"),
              std::string::npos)
        << e.what();
  }
  // Out-of-range parameters are equally eager errors: a non-full model
  // with a zero delay, and a delay on a model that takes none.
  EXPECT_THROW((void)parse_job(restamp(serialize_job(sample_spec()),
                                       "feedback-delay=6",
                                       "feedback-delay=0")),
               InvalidArgument);
  JobSpec full_with_delay = sample_spec();
  full_with_delay.feedback = "full";
  EXPECT_THROW((void)parse_job(serialize_job(full_with_delay)),
               InvalidArgument);
  // shard_config forwards the model into the experiment config.
  const ExperimentConfig config =
      shard_config(sample_spec(), 0, 1, "unused.ckpt");
  EXPECT_TRUE(config.feedback ==
              (FeedbackModel{FeedbackKind::kBatched, 6}));
}

TEST(ServeJobTest, SubmitWritesAParseableSpoolFile) {
  const std::string spool = temp_path("serve_spool");
  fs::create_directories(spool);
  const std::string path = submit_job(spool, sample_spec(), "mine");
  EXPECT_EQ(path, spool + "/mine.job");
  const JobSpec parsed = load_job_file(path);
  EXPECT_EQ(parsed.runs, sample_spec().runs);
}

// ---------------------------------------------------------------------------
// Admission

TEST(ServeAdmissionTest, QueueBoundRejectsAtTheLimit) {
  AdmissionConfig config;
  config.max_queued = 3;
  EXPECT_EQ(admit(0, config), Admission::kAdmit);
  EXPECT_EQ(admit(2, config), Admission::kAdmit);
  EXPECT_EQ(admit(3, config), Admission::kQueueFull);
  EXPECT_EQ(admit(100, config), Admission::kQueueFull);
}

TEST(ServeAdmissionTest, TokenBucketEnforcesRateAndBurst) {
  TokenBucket bucket(2.0, 2.0);  // 2 starts/s, burst of 2
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0)) << "burst exhausted";
  EXPECT_FALSE(bucket.try_take(0.25)) << "only half a token refilled";
  EXPECT_TRUE(bucket.try_take(0.5));
  EXPECT_FALSE(bucket.try_take(0.5));
  EXPECT_TRUE(bucket.try_take(60.0));
  EXPECT_TRUE(bucket.try_take(60.0)) << "refill caps at the burst";
  EXPECT_FALSE(bucket.try_take(60.0));
}

TEST(ServeAdmissionTest, NonPositiveRateDisablesTheLimiter) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

// ---------------------------------------------------------------------------
// Experiment progress hook

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

TEST(ServeProgressTest, EveryCompletedCellIsReportedMonotonically) {
  ExperimentConfig config;
  config.budget = 8;
  config.samples = 2;
  config.runs = 3;
  config.seed = 5;
  config.threads = 2;
  std::vector<std::size_t> done_seq;
  config.progress = [&](const ExperimentProgress& p) {
    EXPECT_EQ(p.cells_total, 6u);
    EXPECT_FALSE(p.restored);
    EXPECT_GT(p.cell_ms, 0.0);
    done_seq.push_back(p.cells_done);
  };
  (void)run_experiment(tiny_factory(), compare_roster(), config);
  ASSERT_EQ(done_seq.size(), 6u);
  for (std::size_t i = 0; i < done_seq.size(); ++i) {
    EXPECT_EQ(done_seq[i], i + 1) << "serialized and monotonic";
  }
}

TEST(ServeProgressTest, RestoredCellsArriveAsOneBatchNotification) {
  ExperimentConfig config;
  config.budget = 8;
  config.samples = 1;
  config.runs = 4;
  config.seed = 6;
  config.checkpoint_path = temp_path("serve_progress_ckpt");
  (void)run_experiment(tiny_factory(), compare_roster(), config);

  std::size_t restored_batches = 0, fresh_cells = 0;
  config.progress = [&](const ExperimentProgress& p) {
    if (p.restored) {
      ++restored_batches;
      EXPECT_EQ(p.cells_done, 4u);
      EXPECT_EQ(p.cells_total, 4u);
    } else {
      ++fresh_cells;
    }
  };
  (void)run_experiment(tiny_factory(), compare_roster(), config);
  EXPECT_EQ(restored_batches, 1u);
  EXPECT_EQ(fresh_cells, 0u) << "a fully checkpointed sweep re-runs nothing";
}

// ---------------------------------------------------------------------------
// Daemon

JobSpec daemon_job(const std::string& instance_path, std::uint32_t runs) {
  JobSpec spec;
  spec.kind = "compare";
  spec.instance = instance_path;
  spec.budget = 5;
  spec.runs = runs;
  spec.seed = 11;
  spec.threads = 1;
  return spec;
}

std::string make_instance_file(const std::string& name) {
  const std::string path = temp_path(name);
  util::Rng rng(21);
  datasets::DatasetConfig config;
  config.scale = 0.02;
  config.num_cautious = 6;
  write_instance_file(datasets::make_dataset("facebook", config, rng), path);
  return path;
}

/// The reference a daemon job must reproduce byte-for-byte: a direct
/// unsharded run through the identical config, reported with the same
/// checkpoint count (only the title line may differ).
std::string reference_report(const JobSpec& spec) {
  const ExperimentResult result = run_experiment(
      job_instance_factory(spec), compare_roster(), shard_config(spec, 0, 1, ""));
  std::ostringstream os;
  ReportOptions options;
  options.title = "reference";
  write_markdown_report(result, shard_config(spec, 0, 1, ""), os, options);
  return os.str();
}

std::string strip_title(const std::string& report) {
  const std::size_t nl = report.find('\n');
  return nl == std::string::npos ? std::string() : report.substr(nl + 1);
}

ServeConfig daemon_config(const std::string& root) {
  ServeConfig config;
  config.root = root;
  config.workers = 2;
  config.poll_ms = 10;
  config.exit_when_idle = true;
  return config;
}

TEST(ServeDaemonTest, RunsASubmittedJobToABitIdenticalReport) {
  const std::string root = temp_path("serve_daemon_e2e");
  const std::string instance = make_instance_file("serve_daemon_e2e_net");
  const JobSpec spec = daemon_job(instance, 6);
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", spec, "e2e");

  ASSERT_EQ(run_daemon(daemon_config(root)), exit_code::kOk);

  const std::vector<JobStatus> status = read_status(root);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].id, "job0001");
  EXPECT_EQ(status[0].state, "done");
  EXPECT_EQ(status[0].cells_done, 6u);
  EXPECT_EQ(status[0].cells_total, 6u);

  const std::string report = read_file(root + "/jobs/job0001/report.md");
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(strip_title(report), strip_title(reference_report(spec)))
      << "sharded daemon run must merge to the direct run's bytes";
}

TEST(ServeDaemonTest, CompletedJobsAreNotReAdoptedOnRestart) {
  const std::string root = temp_path("serve_daemon_readopt");
  const std::string instance = make_instance_file("serve_daemon_readopt_net");
  const JobSpec spec = daemon_job(instance, 4);
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", spec, "once");
  ASSERT_EQ(run_daemon(daemon_config(root)), exit_code::kOk);

  // A restart over a journal whose only job is terminal must stay idle:
  // the job directory is journaled, not an orphan of the submit race.
  ASSERT_EQ(run_daemon(daemon_config(root)), exit_code::kOk);

  const std::string journal_text = read_file(root + "/journal");
  std::size_t submits = 0;
  for (std::size_t at = journal_text.find("submit ");
       at != std::string::npos; at = journal_text.find("submit ", at + 1)) {
    ++submits;
  }
  EXPECT_EQ(submits, 1u)
      << "a done job must not be re-adopted (and re-run) on restart";
  const std::vector<JobStatus> jobs = read_status(root);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, "done");
}

TEST(ServeDaemonTest, SurvivesSigkillMidSweepAndResumesBitIdentically) {
  const std::string root = temp_path("serve_daemon_kill9");
  const std::string instance = make_instance_file("serve_daemon_kill9_net");
  const JobSpec spec = daemon_job(instance, 120);
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", spec, "kill9");

  // First daemon: SIGKILLed mid-sweep — no destructors, no flushes beyond
  // the per-record fsyncs the journal/checkpoints already did.
  pid_t daemon = fork();
  ASSERT_NE(daemon, -1);
  if (daemon == 0) {
    (void)run_daemon(daemon_config(root));
    _exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  kill(daemon, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);

  // Second daemon: must adopt the journal, reclaim any state, and finish.
  daemon = fork();
  ASSERT_NE(daemon, -1);
  if (daemon == 0) {
    _exit(run_daemon(daemon_config(root)));
  }
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), exit_code::kOk);

  const std::vector<JobStatus> jobs = read_status(root);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, "done");
  const std::string report = read_file(root + "/jobs/job0001/report.md");
  EXPECT_EQ(strip_title(report), strip_title(reference_report(spec)))
      << "kill -9 must not lose or duplicate a single cell";
}

TEST(ServeDaemonTest, PoisonedJobIsQuarantinedWithinItsCrashBudget) {
  const std::string root = temp_path("serve_daemon_poison");
  JobSpec spec;
  spec.kind = "compare";
  spec.instance = temp_path("serve_daemon_poison_net_missing");
  spec.runs = 2;
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", spec, "poison");

  ServeConfig config = daemon_config(root);
  config.workers = 1;
  config.admission.crash_budget = 1;
  ASSERT_EQ(run_daemon(config), exit_code::kQuarantined);

  const std::vector<JobStatus> jobs = read_status(root);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, "quarantined");
  EXPECT_GT(jobs[0].crashes, config.admission.crash_budget);
}

TEST(ServeDaemonTest, QueueFullRejectsAtTheSpool) {
  const std::string root = temp_path("serve_daemon_full");
  const std::string instance = make_instance_file("serve_daemon_full_net");
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", daemon_job(instance, 2), "overflow");

  ServeConfig config = daemon_config(root);
  config.admission.max_queued = 0;  // degenerate bound: admit nothing
  ASSERT_EQ(run_daemon(config), exit_code::kOk);

  EXPECT_TRUE(read_status(root).empty());
  EXPECT_TRUE(fs::exists(root + "/spool/overflow.job.rejected"));
}

TEST(ServeDaemonTest, PresetStopFlagDrainsWithoutConsumingTheSpool) {
  const std::string root = temp_path("serve_daemon_drain");
  const std::string instance = make_instance_file("serve_daemon_drain_net");
  const JobSpec spec = daemon_job(instance, 4);
  fs::create_directories(root + "/spool");
  submit_job(root + "/spool", spec, "later");

  volatile std::sig_atomic_t stop = 1;
  ServeConfig config = daemon_config(root);
  config.stop_flag = &stop;
  ASSERT_EQ(run_daemon(config), exit_code::kOk) << "a drain exits 0";
  EXPECT_TRUE(fs::exists(root + "/spool/later.job"))
      << "draining admits nothing; the submission waits for the next run";

  // The next daemon picks the job up and completes it.
  ASSERT_EQ(run_daemon(daemon_config(root)), exit_code::kOk);
  const std::vector<JobStatus> jobs = read_status(root);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, "done");
}

TEST(ServeDaemonTest, SecondDaemonOnTheSameRootIsRefused) {
  const std::string root = temp_path("serve_daemon_lock");
  fs::create_directories(root + "/spool");
  // Child holds the daemon (idles forever); parent must be refused.
  pid_t daemon = fork();
  ASSERT_NE(daemon, -1);
  if (daemon == 0) {
    g_test_stop = 0;
    std::signal(SIGTERM, test_stop_handler);
    ServeConfig config = daemon_config(root);
    config.exit_when_idle = false;
    config.stop_flag = &g_test_stop;
    _exit(run_daemon(config));
  }
  // Wait for the child to take the flock (pidfile appears + lock held).
  int second = exit_code::kOk;
  for (int i = 0; i < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (util::PidFile::read_pid(root + "/serve.pid") == 0) continue;
    second = run_daemon(daemon_config(root));
    break;
  }
  EXPECT_EQ(second, exit_code::kAlreadyRunning);
  kill(daemon, SIGTERM);
  int status = 0;
  ASSERT_EQ(waitpid(daemon, &status, 0), daemon);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "SIGTERM drain exits 0";
}

}  // namespace
}  // namespace accu::serve
