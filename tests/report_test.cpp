// Tests for the experiment report writers and the degree-proportional
// benefit extension.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io_env.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

ExperimentResult small_result(ExperimentConfig& config) {
  const InstanceFactory factory = [](std::uint32_t, std::uint64_t seed) {
    util::Rng rng(seed);
    datasets::DatasetConfig dataset_config;
    dataset_config.scale = 0.05;
    dataset_config.num_cautious = 8;
    return datasets::make_dataset("facebook", dataset_config, rng);
  };
  const std::vector<StrategyFactory> strategies = {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
  config.budget = 12;
  config.samples = 1;
  config.runs = 2;
  config.seed = 5;
  return run_experiment(factory, strategies, config);
}

TEST(MarkdownReportTest, ContainsAllSections) {
  ExperimentConfig config;
  const ExperimentResult result = small_result(config);
  std::ostringstream os;
  ReportOptions options;
  options.title = "unit-test report";
  options.checkpoints = 4;
  write_markdown_report(result, config, os, options);
  const std::string text = os.str();
  EXPECT_NE(text.find("# unit-test report"), std::string::npos);
  EXPECT_NE(text.find("budget k = 12"), std::string::npos);
  EXPECT_NE(text.find("## Summary"), std::string::npos);
  EXPECT_NE(text.find("| ABM |"), std::string::npos);
  EXPECT_NE(text.find("| Random |"), std::string::npos);
  EXPECT_NE(text.find("## Benefit vs requests"), std::string::npos);
  // Checkpoints 3, 6, 9, 12.
  EXPECT_NE(text.find("| 12 |"), std::string::npos);
  EXPECT_NE(text.find("| 3 |"), std::string::npos);
}

TEST(MarkdownReportTest, EmptyResultWritesNotAvailableInsteadOfAsserting) {
  // An interrupted sweep whose cells all failed — or an empty merge —
  // produces aggregates with no samples and zero-length series.  The
  // report must degrade to "n/a" rows, not assert on series.at(k-1).
  ExperimentConfig config;
  config.budget = 12;
  config.samples = 1;
  config.runs = 2;
  ExperimentResult result;
  result.strategy_names = {"ABM", "Random"};
  result.aggregates.resize(2);
  std::ostringstream os;
  ReportOptions options;
  options.checkpoints = 4;
  write_markdown_report(result, config, os, options);
  const std::string text = os.str();
  EXPECT_NE(text.find("## Benefit vs requests"), std::string::npos);
  EXPECT_NE(text.find("| 12 | n/a | n/a |"), std::string::npos);
}

TEST(MarkdownReportTest, MoreCheckpointsThanBudgetEmitsDistinctRowsOnly) {
  ExperimentConfig config;
  ExperimentResult result = small_result(config);  // budget 12
  std::ostringstream os;
  ReportOptions options;
  options.checkpoints = 30;  // > budget: repeated k values must collapse
  write_markdown_report(result, config, os, options);
  const std::string text = os.str();
  // Exactly one row per distinct k in 1..12.
  for (std::size_t k = 1; k <= 12; ++k) {
    const std::string row = "| " + std::to_string(k) + " |";
    const std::size_t first = text.find(row);
    EXPECT_NE(first, std::string::npos) << row;
    EXPECT_EQ(text.find(row, first + 1), std::string::npos)
        << row << " repeated";
  }
}

TEST(MarkdownReportTest, SeriesShorterThanBudgetSaysNotAvailable) {
  // Aggregates built under a smaller budget than config.budget (a merge of
  // early-stopped shards): the late checkpoints have no samples.
  ExperimentConfig config;
  ExperimentResult result = small_result(config);  // series length 12
  config.budget = 24;  // report asks for checkpoints past the series
  std::ostringstream os;
  ReportOptions options;
  options.checkpoints = 4;  // k = 6, 12, 18, 24
  write_markdown_report(result, config, os, options);
  const std::string text = os.str();
  EXPECT_NE(text.find("| 6 |"), std::string::npos);
  EXPECT_EQ(text.find("| 6 | n/a"), std::string::npos);
  EXPECT_NE(text.find("| 18 | n/a | n/a |"), std::string::npos);
  EXPECT_NE(text.find("| 24 | n/a | n/a |"), std::string::npos);
}

TEST(CurvesCsvTest, LongFormatShape) {
  ExperimentConfig config;
  const ExperimentResult result = small_result(config);
  std::ostringstream os;
  write_curves_csv(result, os);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "strategy,request,metric,mean,ci95");
  std::size_t rows = 0;
  std::size_t abm_rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    abm_rows += line.rfind("ABM,", 0) == 0;
    // Five comma-separated fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4) << line;
  }
  // 2 strategies × 5 metrics × 12 requests.
  EXPECT_EQ(rows, 2u * 5u * 12u);
  EXPECT_EQ(abm_rows, 5u * 12u);
}

TEST(DegreeProportionalBenefitTest, ScalesWithExpectedDegree) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 1.0);
  b.add_edge(0, 3, 0.5);
  const Graph g = b.build();
  const BenefitModel m = BenefitModel::degree_proportional(g, 1.0, 2.0, 0.5);
  // E[deg(0)] = 2.0; leaves 0.5 / 1.0 / 0.5.
  EXPECT_DOUBLE_EQ(m.friend_benefit(0), 1.0 + 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(m.friend_benefit(1), 1.0 + 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(m.fof_benefit(0), 0.5 * 5.0);
  EXPECT_TRUE(m.has_strict_gap());
}

TEST(DegreeProportionalBenefitTest, RejectsBadParameters) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_THROW(BenefitModel::degree_proportional(g, 0.0, 1.0, 0.5),
               InvalidArgument);
  EXPECT_THROW(BenefitModel::degree_proportional(g, 1.0, -1.0, 0.5),
               InvalidArgument);
  EXPECT_THROW(BenefitModel::degree_proportional(g, 1.0, 1.0, 1.0),
               InvalidArgument);
}

TEST(DegreeProportionalBenefitTest, UsableInAnInstance) {
  util::Rng rng(7);
  graph::GraphBuilder b = graph::barabasi_albert(40, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  const AccuInstance instance(
      g, std::vector<UserClass>(40), std::vector<double>(40, 0.5),
      std::vector<std::uint32_t>(40, 1),
      BenefitModel::degree_proportional(g, 1.0, 0.5, 0.25));
  const Realization truth = Realization::sample(instance, rng);
  AbmStrategy abm = make_classic_greedy();
  util::Rng srng(8);
  const SimulationResult result = simulate(instance, truth, abm, 10, srng);
  EXPECT_GT(result.total_benefit, 0.0);
}

#ifdef ACCU_HAVE_POSIX_IO

// The durable report path (render to string, write_file_atomic) must turn
// a full disk into a clean DiskFullError without tearing a previously
// published report — the daemon republishes report.md on completion.
TEST(MarkdownReportTest, EnospcOnTheDurableReportPathLeavesTheOldReport) {
  ExperimentConfig config;
  const ExperimentResult result = small_result(config);
  std::ostringstream os;
  write_markdown_report(result, config, os);
  const std::string rendered = os.str();

  const std::string path = testing::TempDir() + "report_enospc_test.md";
  util::write_file_atomic(path, "previous report\n");
  {
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.disk_budget(32);
    EXPECT_THROW(util::write_file_atomic(path, rendered), DiskFullError);
    faulty.materialize_crash_state();
  }
  std::ifstream is(path);
  std::ostringstream survived;
  survived << is.rdbuf();
  EXPECT_EQ(survived.str(), "previous report\n");

  // With space available again the same bytes publish verbatim.
  util::write_file_atomic(path, rendered);
  std::ifstream again(path);
  std::ostringstream republished;
  republished << again.rdbuf();
  EXPECT_EQ(republished.str(), rendered);
}

#endif  // ACCU_HAVE_POSIX_IO

}  // namespace
}  // namespace accu
