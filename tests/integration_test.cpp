// End-to-end integration: full paper pipeline (dataset → policies →
// experiment harness) on a small Facebook-like network, checking the
// qualitative ordering the paper reports (ABM on top, Random at the bottom)
// and cross-module consistency.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"

namespace accu {
namespace {

class EndToEndTest : public testing::Test {
 protected:
  static const ExperimentResult& result() {
    static const ExperimentResult cached = [] {
      const InstanceFactory factory = [](std::uint32_t sample,
                                         std::uint64_t seed) {
        util::Rng rng(seed + 17 * sample);
        datasets::DatasetConfig config;
        config.scale = 0.15;  // ~600 nodes
        config.num_cautious = 25;
        return datasets::make_dataset("facebook", config, rng);
      };
      const std::vector<StrategyFactory> strategies = {
          {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
          {"Greedy", [] { return std::make_unique<AbmStrategy>(
                              make_classic_greedy()); }},
          {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }},
          {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }},
          {"Random", [] { return std::make_unique<RandomStrategy>(); }},
      };
      ExperimentConfig config;
      config.budget = 60;
      config.samples = 3;
      config.runs = 4;
      config.seed = 20190701;
      return run_experiment(factory, strategies, config);
    }();
    return cached;
  }
};

TEST_F(EndToEndTest, AbmBeatsRandomDecisively) {
  const double abm = result().by_name("ABM").total_benefit().mean();
  const double random = result().by_name("Random").total_benefit().mean();
  EXPECT_GT(abm, 1.5 * random);
}

TEST_F(EndToEndTest, AbmBeatsStaticBaselines) {
  const double abm = result().by_name("ABM").total_benefit().mean();
  EXPECT_GT(abm, result().by_name("MaxDegree").total_benefit().mean());
  EXPECT_GT(abm, result().by_name("PageRank").total_benefit().mean());
}

TEST_F(EndToEndTest, AdaptiveGreedyAlsoBeatsStaticBaselines) {
  const double greedy = result().by_name("Greedy").total_benefit().mean();
  EXPECT_GT(greedy, result().by_name("Random").total_benefit().mean());
}

TEST_F(EndToEndTest, AbmBefriendsMoreCautiousUsersThanPureGreedy) {
  // The indirect term exists precisely to seek cautious users (Fig. 4's
  // monotone count).
  EXPECT_GE(result().by_name("ABM").cautious_friends().mean(),
            result().by_name("Greedy").cautious_friends().mean());
}

TEST_F(EndToEndTest, MarginalSplitSumsToTotalMarginal) {
  const TraceAggregator& abm = result().by_name("ABM");
  for (std::size_t i = 0; i < abm.marginal().length(); ++i) {
    EXPECT_NEAR(abm.marginal().at(i).mean(),
                abm.marginal_cautious().at(i).mean() +
                    abm.marginal_reckless().at(i).mean(),
                1e-9);
  }
}

TEST_F(EndToEndTest, FractionCurvesAreProbabilities) {
  for (const char* name : {"ABM", "Greedy", "Random"}) {
    const auto means = result().by_name(name).cautious_fraction().means();
    for (const double f : means) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

}  // namespace
}  // namespace accu
