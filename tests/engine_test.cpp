// Engine-equivalence property tests.
//
// PR 3 collapsed the four hand-written simulation loops (reliable, faulted,
// multi-bot, temporal) into the single `engine::run_rounds` template with
// per-mode environment policies, and moved per-cell scratch into the pooled
// `SimWorkspace`.  These tests pin that refactor: verbatim copies of the
// *pre-engine* loops live below as reference implementations, and every
// strategy shipped by the library must produce byte-identical traces (every
// record field, every counter, every RNG draw) through the engine.  A
// second group pins the workspace: reusing one SimWorkspace across cells,
// instances, and shapes must be indistinguishable from fresh construction,
// including through the multi-threaded experiment harness.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/score_simd.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/lookahead.hpp"
#include "core/strategies/retrying.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations: the pre-engine loops, copied verbatim from the
// last commit before the refactor.  Do not "clean these up" — their whole
// value is being the old code.
// ---------------------------------------------------------------------------

bool ref_resolve_acceptance(const AccuInstance& instance,
                            const Realization& truth, const AttackerView& view,
                            NodeId target) {
  if (instance.is_cautious(target)) {
    const bool reached = view.cautious_would_accept(target);
    return reached ? truth.cautious_above_accepts(target)
                   : truth.cautious_below_accepts(target);
  }
  return truth.reckless_accepts(target);
}

SimulationResult reference_simulate(const AccuInstance& instance,
                                    const Realization& truth,
                                    Strategy& strategy, std::uint32_t budget,
                                    util::Rng& rng) {
  AttackerView view(instance);
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);

  while (view.num_requests() < budget) {
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();

    const bool accepted = ref_resolve_acceptance(instance, truth, view, target);
    record.accepted = accepted;

    if (accepted) {
      const AttackerView::AcceptanceEffects effects =
          view.record_acceptance(target, truth);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, true, view, &effects);
    } else {
      view.record_rejection(target);
      record.benefit_after = view.current_benefit();
      strategy.observe(target, false, view, nullptr);
    }
    result.trace.push_back(record);
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

SimulationResult reference_simulate_with_faults(const AccuInstance& instance,
                                                const Realization& truth,
                                                Strategy& strategy,
                                                std::uint32_t budget,
                                                util::Rng& rng,
                                                FaultModel& faults) {
  AttackerView view(instance);
  SimulationResult result;
  result.trace.reserve(budget);
  strategy.reset(instance, rng);
  // The old loop discovered fault awareness via RTTI; the refactor replaced
  // this with the virtual Strategy::as_fault_observer (satellite 1).
  FaultObserver* fault_observer = dynamic_cast<FaultObserver*>(&strategy);
  std::vector<std::uint32_t> attempts(instance.num_nodes(), 0);

  std::uint32_t rounds = 0;
  while (rounds < budget) {
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) break;

    RequestRecord record;
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    record.benefit_before = view.current_benefit();
    record.attempt = attempts[target];
    if (record.attempt > 0) ++result.num_retries;
    ++rounds;

    const FaultKind fault = faults.next();
    if (fault == FaultKind::kNone) {
      const bool accepted =
          ref_resolve_acceptance(instance, truth, view, target);
      record.accepted = accepted;
      if (accepted) {
        const AttackerView::AcceptanceEffects effects =
            view.record_acceptance(target, truth);
        record.benefit_after = view.current_benefit();
        strategy.observe(target, true, view, &effects);
      } else {
        view.record_rejection(target);
        record.benefit_after = view.current_benefit();
        strategy.observe(target, false, view, nullptr);
      }
      result.trace.push_back(record);
      continue;
    }

    ++result.num_faulted;
    ++attempts[target];
    record.fault = fault;
    record.benefit_after = record.benefit_before;

    FaultFeedback feedback = FaultFeedback::kNoResponse;
    if (fault == FaultKind::kTransient) {
      feedback = FaultFeedback::kTransientError;
    } else if (fault == FaultKind::kRateLimit) {
      feedback = FaultFeedback::kRateLimited;
    }
    const FaultResponse response =
        fault_observer != nullptr
            ? fault_observer->observe_fault(target, feedback, view)
            : FaultResponse::kAbandon;
    if (response == FaultResponse::kAbandon) {
      view.record_rejection(target);
      strategy.observe(target, false, view, nullptr);
      ++result.num_abandoned;
    }
    result.trace.push_back(record);

    if (fault == FaultKind::kRateLimit) {
      const std::uint32_t w = faults.config().suspension_rounds;
      for (std::uint32_t i = 0; i < w && rounds < budget; ++i) {
        RequestRecord stall;
        stall.fault = FaultKind::kSuspensionStall;
        stall.benefit_before = view.current_benefit();
        stall.benefit_after = stall.benefit_before;
        result.trace.push_back(stall);
        ++rounds;
        ++result.rounds_suspended;
      }
    }
  }

  result.total_benefit = view.current_benefit();
  result.num_accepted = static_cast<std::uint32_t>(view.friends().size());
  result.num_cautious_friends = view.num_cautious_friends();
  result.friends = view.friends();
  return result;
}

MultiBotResult reference_simulate_multibot(const AccuInstance& instance,
                                           const MultiBotRealization& truth,
                                           MultiBotStrategy& strategy,
                                           std::uint32_t budget,
                                           BotId num_bots, util::Rng& rng) {
  MultiBotView view(instance, num_bots);
  MultiBotResult result;
  strategy.reset(instance, num_bots, rng);

  while (view.num_requests() < budget) {
    bool any_sent = false;
    for (BotId bot = 0; bot < num_bots && view.num_requests() < budget;
         ++bot) {
      const NodeId target = strategy.select(bot, view, rng);
      if (target == kInvalidNode) continue;
      any_sent = true;
      MultiBotRequestRecord record;
      record.bot = bot;
      record.target = target;
      record.cautious_target = instance.is_cautious(target);
      record.benefit_before = view.current_benefit();
      const bool accepted = instance.is_cautious(target)
                                ? view.cautious_would_accept(bot, target)
                                : truth.reckless_accepts(bot, target);
      record.accepted = accepted;
      if (accepted) {
        view.record_acceptance(bot, target, truth.edges());
      } else {
        view.record_rejection(bot, target);
      }
      record.benefit_after = view.current_benefit();
      result.trace.push_back(record);
    }
    if (!any_sent) break;
    ++result.rounds;
  }

  result.total_benefit = view.current_benefit();
  result.num_cautious_friends = view.num_cautious_friends();
  result.coalition_friends = view.coalition_friends();
  return result;
}

TemporalResult reference_simulate_temporal(const AccuInstance& instance,
                                           const ArrivalSchedule& schedule,
                                           const Realization& truth,
                                           TemporalStrategy& strategy,
                                           std::uint32_t rounds,
                                           std::uint32_t budget,
                                           util::Rng& rng) {
  TemporalView view(instance, schedule, truth);
  TemporalResult result;
  strategy.reset(instance, rng);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    view.advance_to(round);
    if (view.num_requests() >= budget) break;
    TemporalRequestRecord record;
    record.round = round;
    const NodeId target = strategy.select(view, rng);
    if (target == kInvalidNode) {
      record.benefit_after = view.current_benefit();
      result.trace.push_back(record);
      continue;
    }
    record.target = target;
    record.cautious_target = instance.is_cautious(target);
    bool accepted;
    if (instance.is_cautious(target)) {
      const bool reached = view.cautious_would_accept(target);
      accepted = reached ? truth.cautious_above_accepts(target)
                         : truth.cautious_below_accepts(target);
    } else {
      accepted = truth.reckless_accepts(target);
    }
    record.accepted = accepted;
    if (accepted) {
      view.record_acceptance(target);
    } else {
      view.record_rejection(target);
    }
    record.benefit_after = view.current_benefit();
    result.trace.push_back(record);
  }
  result.total_benefit = view.current_benefit();
  result.num_cautious_friends = view.num_cautious_friends();
  result.requests_sent = view.num_requests();
  return result;
}

// ---------------------------------------------------------------------------
// Comparison helpers: every field, exact doubles.
// ---------------------------------------------------------------------------

void expect_same(const SimulationResult& a, const SimulationResult& b,
                 const std::string& label) {
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const RequestRecord& x = a.trace[i];
    const RequestRecord& y = b.trace[i];
    EXPECT_EQ(x.target, y.target) << label << " @" << i;
    EXPECT_EQ(x.accepted, y.accepted) << label << " @" << i;
    EXPECT_EQ(x.cautious_target, y.cautious_target) << label << " @" << i;
    EXPECT_EQ(x.benefit_before, y.benefit_before) << label << " @" << i;
    EXPECT_EQ(x.benefit_after, y.benefit_after) << label << " @" << i;
    EXPECT_EQ(x.fault, y.fault) << label << " @" << i;
    EXPECT_EQ(x.attempt, y.attempt) << label << " @" << i;
  }
  EXPECT_EQ(a.total_benefit, b.total_benefit) << label;
  EXPECT_EQ(a.num_accepted, b.num_accepted) << label;
  EXPECT_EQ(a.num_cautious_friends, b.num_cautious_friends) << label;
  EXPECT_EQ(a.friends, b.friends) << label;
  EXPECT_EQ(a.num_faulted, b.num_faulted) << label;
  EXPECT_EQ(a.num_retries, b.num_retries) << label;
  EXPECT_EQ(a.rounds_suspended, b.rounds_suspended) << label;
  EXPECT_EQ(a.num_abandoned, b.num_abandoned) << label;
}

void expect_same(const MultiBotResult& a, const MultiBotResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const MultiBotRequestRecord& x = a.trace[i];
    const MultiBotRequestRecord& y = b.trace[i];
    EXPECT_EQ(x.bot, y.bot) << "@" << i;
    EXPECT_EQ(x.target, y.target) << "@" << i;
    EXPECT_EQ(x.accepted, y.accepted) << "@" << i;
    EXPECT_EQ(x.cautious_target, y.cautious_target) << "@" << i;
    EXPECT_EQ(x.benefit_before, y.benefit_before) << "@" << i;
    EXPECT_EQ(x.benefit_after, y.benefit_after) << "@" << i;
  }
  EXPECT_EQ(a.total_benefit, b.total_benefit);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.num_cautious_friends, b.num_cautious_friends);
  EXPECT_EQ(a.coalition_friends, b.coalition_friends);
}

void expect_same(const TemporalResult& a, const TemporalResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const TemporalRequestRecord& x = a.trace[i];
    const TemporalRequestRecord& y = b.trace[i];
    EXPECT_EQ(x.round, y.round) << "@" << i;
    EXPECT_EQ(x.target, y.target) << "@" << i;
    EXPECT_EQ(x.accepted, y.accepted) << "@" << i;
    EXPECT_EQ(x.cautious_target, y.cautious_target) << "@" << i;
    EXPECT_EQ(x.benefit_after, y.benefit_after) << "@" << i;
  }
  EXPECT_EQ(a.total_benefit, b.total_benefit);
  EXPECT_EQ(a.num_cautious_friends, b.num_cautious_friends);
  EXPECT_EQ(a.requests_sent, b.requests_sent);
}

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

AccuInstance facebook_instance(double scale = 0.05) {
  util::Rng rng(7);
  datasets::DatasetConfig config;
  config.scale = scale;
  config.num_cautious = 10;
  return datasets::make_dataset("facebook", config, rng);
}

struct NamedFactory {
  std::string name;
  std::function<std::unique_ptr<Strategy>()> make;
};

/// Every single-bot strategy the library ships, including a retry-wrapped
/// one (exercises the as_fault_observer dispatch) and both ABM modes.
std::vector<NamedFactory> all_strategies() {
  std::vector<NamedFactory> out;
  out.push_back({"Random", [] { return std::make_unique<RandomStrategy>(); }});
  out.push_back(
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }});
  out.push_back(
      {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }});
  out.push_back(
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }});
  out.push_back({"ABM-reference", [] {
                   AbmStrategy::Config config;
                   config.incremental = false;
                   return std::make_unique<AbmStrategy>(config);
                 }});
  out.push_back({"BatchedABM", [] {
                   return std::make_unique<BatchedAbmStrategy>(
                       PotentialWeights{0.5, 0.5}, 5);
                 }});
  out.push_back({"BatchedABM-scalar", [] {
                   return std::make_unique<BatchedAbmStrategy>(
                       PotentialWeights{0.5, 0.5}, 5, /*flat_scoring=*/false);
                 }});
  out.push_back({"Lookahead", [] {
                   LookaheadStrategy::Config config;
                   config.beam = 4;
                   config.scenario_samples = 2;
                   return std::make_unique<LookaheadStrategy>(config);
                 }});
  out.push_back({"Lookahead-scalar", [] {
                   LookaheadStrategy::Config config;
                   config.beam = 4;
                   config.scenario_samples = 2;
                   config.flat_scoring = false;
                   return std::make_unique<LookaheadStrategy>(config);
                 }});
  out.push_back({"ABM+retry", [] {
                   return std::make_unique<RetryingStrategy>(
                       std::make_unique<AbmStrategy>(0.5, 0.5),
                       util::RetryPolicy::exponential_jitter(3));
                 }});
  return out;
}

// ---------------------------------------------------------------------------
// Equivalence: engine vs the pre-refactor loops.
// ---------------------------------------------------------------------------

TEST(EngineEquivalenceTest, ReliableTracesMatchLegacyLoopForAllStrategies) {
  const AccuInstance instance = facebook_instance();
  for (std::uint64_t world = 0; world < 3; ++world) {
    util::Rng truth_rng(100 + world);
    const Realization truth = Realization::sample(instance, truth_rng);
    for (const NamedFactory& factory : all_strategies()) {
      auto legacy = factory.make();
      auto engine = factory.make();
      util::Rng rng_a(world * 31 + 5);
      util::Rng rng_b(world * 31 + 5);
      const SimulationResult a =
          reference_simulate(instance, truth, *legacy, 40, rng_a);
      const SimulationResult b = simulate(instance, truth, *engine, 40, rng_b);
      expect_same(a, b, factory.name + " world " + std::to_string(world));
    }
  }
}

TEST(EngineEquivalenceTest, FaultyTracesMatchLegacyLoopForAllStrategies) {
  const AccuInstance instance = facebook_instance();
  FaultConfig fault_config = FaultConfig::uniform(0.3, /*suspension_rounds=*/3);
  for (std::uint64_t world = 0; world < 3; ++world) {
    util::Rng truth_rng(200 + world);
    const Realization truth = Realization::sample(instance, truth_rng);
    for (const NamedFactory& factory : all_strategies()) {
      auto legacy = factory.make();
      auto engine = factory.make();
      util::Rng rng_a(world * 17 + 3);
      util::Rng rng_b(world * 17 + 3);
      FaultModel faults_a(fault_config, world + 11);
      FaultModel faults_b(fault_config, world + 11);
      const SimulationResult a = reference_simulate_with_faults(
          instance, truth, *legacy, 60, rng_a, faults_a);
      const SimulationResult b = simulate_with_faults(instance, truth, *engine,
                                                      60, rng_b, faults_b);
      expect_same(a, b, factory.name + " world " + std::to_string(world));
    }
  }
}

TEST(EngineEquivalenceTest, ZeroRateFaultyEnvEqualsReliableEnv) {
  const AccuInstance instance = facebook_instance();
  util::Rng truth_rng(42);
  const Realization truth = Realization::sample(instance, truth_rng);
  for (const NamedFactory& factory : all_strategies()) {
    auto plain = factory.make();
    auto faulty = factory.make();
    util::Rng rng_a(9);
    util::Rng rng_b(9);
    FaultModel no_faults(FaultConfig{}, 123);
    const SimulationResult a = simulate(instance, truth, *plain, 40, rng_a);
    const SimulationResult b = simulate_with_faults(instance, truth, *faulty,
                                                    40, rng_b, no_faults);
    expect_same(a, b, factory.name);
    EXPECT_EQ(b.num_faulted, 0u) << factory.name;
    EXPECT_EQ(b.rounds_suspended, 0u) << factory.name;
  }
}

TEST(EngineEquivalenceTest, AsFaultObserverMatchesDynamicCast) {
  // Satellite 1: the virtual hook must agree with RTTI for both a plain and
  // a fault-aware strategy.
  AbmStrategy plain(0.5, 0.5);
  RetryingStrategy aware(std::make_unique<AbmStrategy>(0.5, 0.5),
                         util::RetryPolicy::exponential_jitter(2));
  Strategy& plain_ref = plain;
  Strategy& aware_ref = aware;
  EXPECT_EQ(plain_ref.as_fault_observer(),
            dynamic_cast<FaultObserver*>(&plain_ref));
  EXPECT_EQ(plain_ref.as_fault_observer(), nullptr);
  EXPECT_EQ(aware_ref.as_fault_observer(),
            dynamic_cast<FaultObserver*>(&aware_ref));
  EXPECT_NE(aware_ref.as_fault_observer(), nullptr);
}

TEST(EngineEquivalenceTest, MultiBotTracesMatchLegacyLoop) {
  const AccuInstance instance = facebook_instance();
  for (BotId num_bots : {BotId{1}, BotId{2}, BotId{3}}) {
    util::Rng truth_rng(300 + num_bots);
    const MultiBotRealization truth =
        MultiBotRealization::sample(instance, num_bots, truth_rng);
    MultiBotAbm legacy({0.5, 0.5});
    MultiBotAbm engine({0.5, 0.5});
    util::Rng rng_a(num_bots * 7 + 1);
    util::Rng rng_b(num_bots * 7 + 1);
    const MultiBotResult a = reference_simulate_multibot(
        instance, truth, legacy, 30, num_bots, rng_a);
    const MultiBotResult b =
        simulate_multibot(instance, truth, engine, 30, num_bots, rng_b);
    expect_same(a, b);
  }
}

TEST(EngineEquivalenceTest, TemporalTracesMatchLegacyLoop) {
  const AccuInstance instance = facebook_instance();
  util::Rng truth_rng(17);
  const Realization truth = Realization::sample(instance, truth_rng);
  util::Rng schedule_rng(23);
  const ArrivalSchedule schedule = ArrivalSchedule::uniform_arrivals(
      static_cast<std::uint32_t>(instance.num_nodes()), 0.5, 30, schedule_rng);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    TemporalAbm legacy({0.5, 0.5});
    TemporalAbm engine({0.5, 0.5});
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const TemporalResult a = reference_simulate_temporal(
        instance, schedule, truth, legacy, 40, 25, rng_a);
    const TemporalResult b =
        simulate_temporal(instance, schedule, truth, engine, 40, 25, rng_b);
    expect_same(a, b);
  }
}

TEST(EngineEquivalenceTest, ScoreEngineBackedStrategiesMatchScalarScoring) {
  // PR 4: the SoA/batched score paths must be invisible in the traces —
  // every strategy that scores through core/score.hpp is pinned
  // byte-identically against its scalar-scoring twin.
  struct Pair {
    std::string name;
    std::function<std::unique_ptr<Strategy>()> flat;
    std::function<std::unique_ptr<Strategy>()> scalar;
  };
  const std::vector<Pair> pairs = {
      {"ABM",
       [] { return std::make_unique<AbmStrategy>(0.5, 0.5); },
       [] {
         AbmStrategy::Config config;
         config.incremental = false;
         return std::make_unique<AbmStrategy>(config);
       }},
      {"BatchedABM",
       [] {
         return std::make_unique<BatchedAbmStrategy>(
             PotentialWeights{0.5, 0.5}, 5, /*flat_scoring=*/true);
       },
       [] {
         return std::make_unique<BatchedAbmStrategy>(
             PotentialWeights{0.5, 0.5}, 5, /*flat_scoring=*/false);
       }},
      {"Lookahead",
       [] {
         LookaheadStrategy::Config config;
         config.beam = 4;
         config.scenario_samples = 2;
         return std::make_unique<LookaheadStrategy>(config);
       },
       [] {
         LookaheadStrategy::Config config;
         config.beam = 4;
         config.scenario_samples = 2;
         config.flat_scoring = false;
         return std::make_unique<LookaheadStrategy>(config);
       }},
  };
  const AccuInstance instance = facebook_instance();
  for (std::uint64_t world = 0; world < 3; ++world) {
    util::Rng truth_rng(900 + world);
    const Realization truth = Realization::sample(instance, truth_rng);
    for (const Pair& pair : pairs) {
      auto flat = pair.flat();
      auto scalar = pair.scalar();
      util::Rng rng_a(world * 13 + 2);
      util::Rng rng_b(world * 13 + 2);
      const SimulationResult a = simulate(instance, truth, *flat, 45, rng_a);
      const SimulationResult b = simulate(instance, truth, *scalar, 45, rng_b);
      expect_same(a, b, pair.name + " world " + std::to_string(world));
    }
  }
}

TEST(EngineEquivalenceTest, WantsScorePackReflectsScoringMode) {
  // The engine offers the workspace ScorePack — and with it the
  // SIMD-dispatched batched rescore — exactly when wants_score_pack() is
  // true.  Pin each strategy's answer so a scalar twin cannot silently
  // drift onto (or off) the kernel seam.
  EXPECT_TRUE(AbmStrategy(0.5, 0.5).wants_score_pack());
  {
    AbmStrategy::Config config;
    config.incremental = false;
    EXPECT_FALSE(AbmStrategy(config).wants_score_pack());
  }
  EXPECT_TRUE(BatchedAbmStrategy(PotentialWeights{0.5, 0.5}, 5,
                                 /*flat_scoring=*/true)
                  .wants_score_pack());
  EXPECT_FALSE(BatchedAbmStrategy(PotentialWeights{0.5, 0.5}, 5,
                                  /*flat_scoring=*/false)
                   .wants_score_pack());
  {
    LookaheadStrategy::Config config;
    EXPECT_TRUE(LookaheadStrategy(config).wants_score_pack());
    config.flat_scoring = false;
    EXPECT_FALSE(LookaheadStrategy(config).wants_score_pack());
  }
  // The retry decorator forwards the inner policy's answer verbatim.
  EXPECT_TRUE(RetryingStrategy(std::make_unique<AbmStrategy>(0.5, 0.5),
                               util::RetryPolicy::exponential_jitter(3))
                  .wants_score_pack());
  EXPECT_FALSE(RetryingStrategy(std::make_unique<RandomStrategy>(),
                                util::RetryPolicy::exponential_jitter(3))
                   .wants_score_pack());
}

TEST(EngineEquivalenceTest, ScalarTwinsMatchFlatUnderEveryForcedIsa) {
  // The flat/scalar-twin equivalence above, re-pinned under every kernel
  // table this host supports: forcing an ISA changes which vector code
  // scores the flat side, and the twin (which never touches the seam)
  // must still see byte-identical traces.
  const AccuInstance instance = facebook_instance();
  util::Rng truth_rng(912);
  const Realization truth = Realization::sample(instance, truth_rng);
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (!simd::isa_supported(isa)) continue;
    simd::select_isa(isa);
    const std::string label = simd::isa_name(isa);
    {
      BatchedAbmStrategy flat(PotentialWeights{0.5, 0.5}, 5,
                              /*flat_scoring=*/true);
      BatchedAbmStrategy scalar(PotentialWeights{0.5, 0.5}, 5,
                                /*flat_scoring=*/false);
      util::Rng rng_a(77);
      util::Rng rng_b(77);
      expect_same(simulate(instance, truth, flat, 45, rng_a),
                  simulate(instance, truth, scalar, 45, rng_b),
                  "BatchedABM isa " + label);
    }
    {
      LookaheadStrategy::Config config;
      config.beam = 4;
      config.scenario_samples = 2;
      LookaheadStrategy flat(config);
      config.flat_scoring = false;
      LookaheadStrategy scalar(config);
      util::Rng rng_a(78);
      util::Rng rng_b(78);
      expect_same(simulate(instance, truth, flat, 45, rng_a),
                  simulate(instance, truth, scalar, 45, rng_b),
                  "Lookahead isa " + label);
    }
  }
  simd::select_auto();
}

// ---------------------------------------------------------------------------
// Workspace reuse.
// ---------------------------------------------------------------------------

TEST(EngineWorkspaceTest, SampleTruthMatchesRealizationSample) {
  const AccuInstance instance = facebook_instance();
  SimWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const Realization fresh = Realization::sample(instance, rng_a);
    const Realization& pooled = ws.sample_truth(instance, rng_b);
    ASSERT_EQ(fresh.num_nodes(), pooled.num_nodes());
    ASSERT_EQ(fresh.num_edges(), pooled.num_edges());
    for (EdgeId e = 0; e < fresh.num_edges(); ++e) {
      ASSERT_EQ(fresh.edge_present(e), pooled.edge_present(e)) << e;
    }
    for (NodeId u = 0; u < fresh.num_nodes(); ++u) {
      ASSERT_EQ(fresh.reckless_accepts(u), pooled.reckless_accepts(u)) << u;
      ASSERT_EQ(fresh.cautious_below_accepts(u),
                pooled.cautious_below_accepts(u))
          << u;
      ASSERT_EQ(fresh.cautious_above_accepts(u),
                pooled.cautious_above_accepts(u))
          << u;
    }
    // The two generators must have consumed identical draw counts.
    EXPECT_EQ(rng_a(), rng_b()) << seed;
  }
}

TEST(EngineWorkspaceTest, ReusedWorkspaceMatchesFreshConstruction) {
  // One workspace serves many cells over instances of different shapes;
  // every cell must be byte-identical to a fresh-allocation run, and the
  // persistent strategies of the worker pool must reset cleanly.
  const AccuInstance small = facebook_instance(0.03);
  const AccuInstance large = facebook_instance(0.06);
  SimWorkspace ws;
  auto pooled_abm = std::make_unique<AbmStrategy>(0.5, 0.5);
  for (std::uint64_t cell = 0; cell < 6; ++cell) {
    const AccuInstance& instance = (cell % 2 == 0) ? small : large;
    util::Rng truth_a(500 + cell);
    util::Rng truth_b(500 + cell);
    const Realization fresh_truth = Realization::sample(instance, truth_a);
    const Realization& pooled_truth = ws.sample_truth(instance, truth_b);

    AbmStrategy fresh_abm(0.5, 0.5);
    util::Rng rng_a(cell + 1);
    util::Rng rng_b(cell + 1);
    const SimulationResult fresh =
        simulate(instance, fresh_truth, fresh_abm, 30, rng_a);

    SimulationResult pooled;
    AttackerView& view = ws.reset_view(instance);
    simulate_into(instance, pooled_truth, *pooled_abm, 30, rng_b, view, ws,
                  pooled);
    expect_same(fresh, pooled, "cell " + std::to_string(cell));
  }
}

TEST(EngineWorkspaceTest, ReusedWorkspaceMatchesFreshUnderFaults) {
  const AccuInstance instance = facebook_instance();
  FaultConfig fault_config = FaultConfig::uniform(0.25, 2);
  SimWorkspace ws;
  auto pooled = std::make_unique<RetryingStrategy>(
      std::make_unique<AbmStrategy>(0.5, 0.5),
      util::RetryPolicy::exponential_jitter(3));
  for (std::uint64_t cell = 0; cell < 4; ++cell) {
    util::Rng truth_a(700 + cell);
    util::Rng truth_b(700 + cell);
    const Realization fresh_truth = Realization::sample(instance, truth_a);
    const Realization& pooled_truth = ws.sample_truth(instance, truth_b);

    RetryingStrategy fresh_strategy(std::make_unique<AbmStrategy>(0.5, 0.5),
                                    util::RetryPolicy::exponential_jitter(3));
    util::Rng rng_a(cell + 40);
    util::Rng rng_b(cell + 40);
    FaultModel faults_a(fault_config, cell + 900);
    FaultModel faults_b(fault_config, cell + 900);
    const SimulationResult fresh = simulate_with_faults(
        instance, fresh_truth, fresh_strategy, 50, rng_a, faults_a);

    SimulationResult out;
    AttackerView& view = ws.reset_view(instance);
    simulate_with_faults_into(instance, pooled_truth, *pooled, 50, rng_b,
                              faults_b, view, ws, out);
    expect_same(fresh, out, "cell " + std::to_string(cell));
  }
}

TEST(EngineWorkspaceTest, ExperimentIsThreadCountInvariant) {
  // The sweep harness reuses one workspace + strategy set per worker; the
  // aggregates must not depend on how cells land on workers.
  ExperimentConfig config;
  config.budget = 12;
  config.samples = 2;
  config.runs = 3;
  config.seed = 77;
  config.faults = FaultConfig::uniform(0.2, 2);
  config.retry = util::RetryPolicy::exponential_jitter(2);
  const InstanceFactory factory = [](std::uint32_t sample,
                                     std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig dataset;
    dataset.scale = 0.05;
    dataset.num_cautious = 10;
    return datasets::make_dataset("facebook", dataset, rng);
  };
  const std::vector<StrategyFactory> strategies = {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
  config.threads = 1;
  const ExperimentResult serial = run_experiment(factory, strategies, config);
  config.threads = 4;
  const ExperimentResult parallel =
      run_experiment(factory, strategies, config);
  for (const char* name : {"ABM", "Random"}) {
    EXPECT_EQ(serial.by_name(name).total_benefit().mean(),
              parallel.by_name(name).total_benefit().mean())
        << name;
    EXPECT_EQ(serial.by_name(name).retries().mean(),
              parallel.by_name(name).retries().mean())
        << name;
    const auto a = serial.by_name(name).cumulative_benefit().means();
    const auto b = parallel.by_name(name).cumulative_benefit().means();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << name << " @" << i;
    }
  }
}

}  // namespace
}  // namespace accu
