// The SIMD seam's determinism contract (core/score_simd.hpp) — ISSUE 9.
//
//   * ScoreSimdTest     — every kernel table the build carries (portable
//     scalar + whatever the host CPU supports) produces bit-identical
//     doubles and packed words on random rows, including unaligned ranges
//     and tails; ISA parsing/selection semantics.
//   * ScoreSimdBatchTest — score_batch under every forced ISA and under
//     arbitrary range chunking is bit-identical to itself and to the
//     scalar reference potential.
//   * ScoreResampleTest — the draw-plan fast Realization::resample is
//     draw-for-draw identical to resample_reference: same bits, same RNG
//     end state, under every forced ISA, across population mixes including
//     deterministic (p ∈ {0,1}) edges and coins and the generalized
//     cautious model.
//
// Suite names deliberately start with "Score" so tools/ci.sh's engine-gate
// and forced-ISA stages (-R 'Engine|Score|...') pick them up.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/realization.hpp"
#include "core/score.hpp"
#include "core/score_simd.hpp"
#include "core/strategies/abm.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Forces one ISA for the test's scope, restoring auto selection after.
class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) { simd::select_isa(isa); }
  ~IsaGuard() { simd::select_auto(); }
};

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::isa_supported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::isa_supported(simd::Isa::kNeon)) isas.push_back(simd::Isa::kNeon);
  return isas;
}

// ---------------------------------------------------------------------------
// Kernel-level cross-ISA identity
// ---------------------------------------------------------------------------

TEST(ScoreSimdTest, RowKernelsBitIdenticalAcrossIsas) {
  util::Rng rng(91);
  const std::uint32_t n_slots = 300;
  const NodeId n_nodes = 64;
  std::vector<double> values(n_slots);
  std::vector<NodeId> nodes(n_slots);
  std::vector<double> table(n_nodes);
  for (auto& v : values) v = rng.uniform(0.0, 3.0);
  for (auto& v : nodes) v = static_cast<NodeId>(rng.index(n_nodes));
  for (auto& v : table) v = rng.bernoulli(0.7) ? rng.uniform() : 0.0;

  simd::select_isa(simd::Isa::kScalar);
  const simd::ScoreKernels scalar = simd::kernels();
  for (const simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const simd::ScoreKernels& k = simd::kernels();
    EXPECT_EQ(k.id, isa);
    // Every (s0, s1) alignment class: full vector bodies, odd tails,
    // ranges shorter than one vector, empty ranges.
    for (const std::uint32_t s0 : {0u, 1u, 2u, 3u, 4u, 7u, 64u}) {
      for (const std::uint32_t s1 :
           {s0, s0 + 1, s0 + 3, s0 + 4, s0 + 5, s0 + 17, n_slots}) {
        ASSERT_EQ(k.row_gather_mul(values.data(), nodes.data(), table.data(),
                                   s0, s1),
                  scalar.row_gather_mul(values.data(), nodes.data(),
                                        table.data(), s0, s1))
            << simd::isa_name(isa) << " gather [" << s0 << "," << s1 << ")";
        ASSERT_EQ(k.row_sum(values.data(), s0, s1),
                  scalar.row_sum(values.data(), s0, s1))
            << simd::isa_name(isa) << " sum [" << s0 << "," << s1 << ")";
      }
    }
  }
}

TEST(ScoreSimdTest, BernoulliPackBitIdenticalAcrossIsas) {
  util::Rng rng(92);
  for (const std::size_t n : {0ull, 1ull, 63ull, 64ull, 65ull, 200ull,
                              640ull, 777ull}) {
    std::vector<std::uint64_t> raw(n), thr(n);
    rng.fill_raw(raw.data(), n);
    for (auto& t : thr) {
      t = util::Rng::bernoulli_threshold(0.001 + 0.998 * rng.uniform());
    }
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> ref(words, 0xdeadbeefULL);
    simd::select_isa(simd::Isa::kScalar);
    simd::kernels().bernoulli_pack(raw.data(), thr.data(), n, ref.data());
    for (std::size_t i = 0; i < n; ++i) {  // definitionally correct bits
      ASSERT_EQ((ref[i >> 6] >> (i & 63)) & 1u, (raw[i] >> 11) < thr[i] ? 1u : 0u);
    }
    for (const simd::Isa isa : supported_isas()) {
      IsaGuard guard(isa);
      std::vector<std::uint64_t> out(words, 0xdeadbeefULL);
      simd::kernels().bernoulli_pack(raw.data(), thr.data(), n, out.data());
      ASSERT_EQ(out, ref) << simd::isa_name(isa) << " n=" << n;
    }
  }
  simd::select_auto();
}

TEST(ScoreSimdTest, ParseSelectAndNames) {
  EXPECT_EQ(simd::parse_isa("auto"), std::nullopt);
  EXPECT_EQ(simd::parse_isa("scalar"), simd::Isa::kScalar);
  // Foreign ISA names must parse on every platform (descriptors travel);
  // support is a select-time question.
  EXPECT_EQ(simd::parse_isa("avx2"), simd::Isa::kAvx2);
  EXPECT_EQ(simd::parse_isa("neon"), simd::Isa::kNeon);
  EXPECT_THROW((void)simd::parse_isa("sse9"), InvalidArgument);
  EXPECT_THROW((void)simd::parse_isa(""), InvalidArgument);

  EXPECT_TRUE(simd::isa_supported(simd::Isa::kScalar));
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_supported(isa)) {
      simd::select_isa(isa);
      EXPECT_EQ(simd::active_isa(), isa);
    } else {
      EXPECT_THROW(simd::select_isa(isa), InvalidArgument);
    }
  }
  simd::select(std::nullopt);
  if (std::getenv("ACCU_SIMD") == nullptr) {
    EXPECT_EQ(simd::active_isa(), simd::best_isa());
  }
  EXPECT_TRUE(simd::isa_supported(simd::active_isa()));
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// score_batch: forced-ISA + chunking identity
// ---------------------------------------------------------------------------

AccuInstance make_mixed_instance(std::uint64_t seed, NodeId n,
                                 std::size_t max_cautious, double q1) {
  util::Rng rng(seed);
  graph::GraphBuilder b = graph::holme_kim(n, 4, 0.35, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(n, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(n, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < n && cautious.size() < max_cautious; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId x : cautious) adjacent |= g.has_edge(v, x);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform();
  BenefitModel benefits = BenefitModel::paper_default(classes);
  if (q1 > 0.0) {
    GeneralizedCautiousParams params{std::vector<double>(n, q1),
                                     std::vector<double>(n, 1.0)};
    return AccuInstance(g, classes, q, thresholds, std::move(benefits),
                        std::move(params));
  }
  return AccuInstance(g, classes, q, thresholds, std::move(benefits));
}

TEST(ScoreSimdBatchTest, ForcedIsaAndChunkingBitIdentical) {
  const AccuInstance instance = make_mixed_instance(7, 90, 8, 0.0);
  const NodeId n = instance.num_nodes();
  ScorePack pack;
  pack.build(instance);
  const PotentialWeights weights{0.5, 0.5};

  // Evolve a view a few requests in so masks/gaps are non-trivial.
  util::Rng rng(8);
  const Realization truth = Realization::sample(instance, rng);
  AttackerView view(instance);
  for (NodeId t = 0; t < 12; ++t) {
    if (t % 3 == 0) {
      view.record_rejection(t);
    } else {
      view.record_acceptance(t, truth);
    }
  }

  simd::select_isa(simd::Isa::kScalar);
  std::vector<double> ref(n);
  score_batch(pack, view, weights, 0, n, ref.data());

  // The scalar potential is the same doubles (sanity anchor).
  AbmStrategy::Config config;
  config.weights = weights;
  config.incremental = false;
  const AbmStrategy scalar(config);
  for (NodeId u = 0; u < n; ++u) {
    if (view.is_requested(u)) continue;
    ASSERT_EQ(ref[u], scalar.potential(view, u)) << "node " << u;
  }

  for (const simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    std::vector<double> full(n);
    score_batch(pack, view, weights, 0, n, full.data());
    ASSERT_EQ(full, ref) << simd::isa_name(isa);

    // Arbitrary chunking through the split prepare/ranged API.
    ScoreBatchScratch scratch;
    score_batch_prepare(pack, view, weights.indirect > 0.0, scratch);
    std::vector<double> chunked(n, -1.0);
    const NodeId bounds[] = {0, 7, 8, 31, 32, 33, 64, n};
    for (std::size_t c = 0; c + 1 < std::size(bounds); ++c) {
      score_batch_ranged(pack, view, weights, scratch, bounds[c],
                         bounds[c + 1], chunked.data() + bounds[c]);
    }
    ASSERT_EQ(chunked, ref) << simd::isa_name(isa) << " chunked";
  }
}

// ---------------------------------------------------------------------------
// Fast resample vs the reference draw loop
// ---------------------------------------------------------------------------

/// A small instance exercising every draw-plan case: drawn edges,
/// deterministic present/absent edges, reckless q ∈ {0, drawn, 1}, cautious
/// users with deterministic and (optionally) drawn regime coins.
AccuInstance make_plan_stress_instance(double q1, double q2) {
  graph::GraphBuilder b(8);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 1.0);   // deterministic present — no draw
  b.add_edge(2, 3, 0.0);   // deterministic absent — no draw
  b.add_edge(3, 4, 0.25);
  b.add_edge(4, 5, 0.75);
  b.add_edge(5, 6, 1.0);
  b.add_edge(6, 7, 0.01);
  b.add_edge(0, 7, 0.99);
  const Graph g = b.build();
  std::vector<UserClass> classes(8, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  classes[5] = UserClass::kCautious;
  std::vector<std::uint32_t> thresholds(8, 1);
  thresholds[2] = 2;
  thresholds[5] = 1;
  std::vector<double> q = {0.3, 0.0, 0.5, 1.0, 0.8, 0.5, 0.0, 1.0};
  BenefitModel benefits = BenefitModel::paper_default(classes);
  if (q1 > 0.0 || q2 < 1.0) {
    GeneralizedCautiousParams params{std::vector<double>(8, q1),
                                     std::vector<double>(8, q2)};
    return AccuInstance(g, classes, q, thresholds, std::move(benefits),
                        std::move(params));
  }
  return AccuInstance(g, classes, q, thresholds, std::move(benefits));
}

void expect_same_realization(const Realization& a, const Realization& b,
                             const AccuInstance& instance, const char* what) {
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_present(e), b.edge_present(e)) << what << " edge " << e;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.reckless_accepts(u), b.reckless_accepts(u)) << what << " " << u;
    ASSERT_EQ(a.cautious_below_accepts(u), b.cautious_below_accepts(u))
        << what << " " << u;
    ASSERT_EQ(a.cautious_above_accepts(u), b.cautious_above_accepts(u))
        << what << " " << u;
  }
  (void)instance;
}

void check_resample_matches_reference(const AccuInstance& instance,
                                      const char* what) {
  for (const simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    util::Rng fast_rng(1234);
    util::Rng ref_rng(1234);
    Realization fast = Realization::certain(instance);
    Realization ref = Realization::certain(instance);
    for (int round = 0; round < 5; ++round) {
      fast.resample(instance, fast_rng);
      ref.resample_reference(instance, ref_rng);
      expect_same_realization(fast, ref, instance, what);
      // Draw-for-draw: both generators must be in the same state.
      ASSERT_EQ(fast_rng(), ref_rng()) << what << " rng state, round " << round;
    }
  }
}

TEST(ScoreResampleTest, PlanStressDeterministicModel) {
  check_resample_matches_reference(make_plan_stress_instance(0.0, 1.0),
                                   "stress-deterministic");
}

TEST(ScoreResampleTest, PlanStressGeneralizedDrawnCoins) {
  check_resample_matches_reference(make_plan_stress_instance(0.35, 0.9),
                                   "stress-generalized");
}

TEST(ScoreResampleTest, PopulationMixesMatchReference) {
  check_resample_matches_reference(make_mixed_instance(21, 120, 0, 0.0),
                                   "all-reckless");
  check_resample_matches_reference(make_mixed_instance(22, 120, 10, 0.0),
                                   "sparse-cautious");
  check_resample_matches_reference(make_mixed_instance(23, 120, 10, 0.4),
                                   "generalized");
}

TEST(ScoreResampleTest, PlanRebuildsWhenInstanceChanges) {
  const AccuInstance first = make_mixed_instance(31, 60, 5, 0.0);
  const AccuInstance second = make_mixed_instance(32, 80, 8, 0.3);
  util::Rng fast_rng(9);
  util::Rng ref_rng(9);
  Realization fast = Realization::certain(first);
  Realization ref = Realization::certain(first);
  // Alternate instances through one pooled realization (the workspace
  // pattern when a sweep moves to the next cell).
  for (int round = 0; round < 4; ++round) {
    const AccuInstance& inst = (round % 2 == 0) ? first : second;
    fast.resample(inst, fast_rng);
    ref.resample_reference(inst, ref_rng);
    expect_same_realization(fast, ref, inst, "alternating");
    ASSERT_EQ(fast_rng(), ref_rng());
  }
}

}  // namespace
}  // namespace accu
