// Tests for the injectable I/O environment (util/io_env.hpp) and the
// durability semantics util/atomic_file builds on top of it: short writes
// and EINTR are absorbed, ENOSPC and failed fsyncs fail-stop with their
// dedicated exception types, a failed fsync poisons the appender for good
// (fsyncgate), and FaultyFs's shadow-durability model answers the only
// question that matters after a crash — "what is actually on disk?".

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/io_env.hpp"

#ifdef ACCU_HAVE_POSIX_IO

namespace accu::util {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream is(path);
  return is.good();
}

TEST(IoEnvTest, ScopedOverrideInstallsAndRestores) {
  FaultyFs faulty;
  EXPECT_EQ(&io_env(), &real_io_env());
  {
    ScopedIoEnv scoped(faulty);
    EXPECT_EQ(&io_env(), &faulty);
  }
  EXPECT_EQ(&io_env(), &real_io_env());
}

TEST(IoEnvTest, ShortWritesAreRetriedToCompletion) {
  const std::string path = temp_path("ioenv_short.log");
  FaultyFs faulty;
  faulty.short_write_cap(3);
  {
    ScopedIoEnv scoped(faulty);
    DurableAppender out;
    out.open(path);
    out.append("hello, short-write world\n");
    out.sync();
  }
  EXPECT_EQ(read_file(path), "hello, short-write world\n");
  std::string durable;
  ASSERT_TRUE(faulty.durable_content(path, &durable));
  EXPECT_EQ(durable, "hello, short-write world\n");
}

TEST(IoEnvTest, EintrBurstIsAbsorbedAndIsNotACrashBoundary) {
  const std::string path = temp_path("ioenv_eintr.log");
  FaultyFs faulty;
  {
    ScopedIoEnv scoped(faulty);
    DurableAppender out;
    out.open(path);
    const std::uint64_t before = faulty.op_count();
    faulty.eintr_burst(7);
    out.append("x");
    // One effectful write; the 7 EINTR rejections consumed no boundaries.
    EXPECT_EQ(faulty.op_count(), before + 1);
    out.sync();
  }
  EXPECT_EQ(read_file(path), "x");
}

TEST(IoEnvTest, DiskBudgetExhaustionThrowsDiskFullError) {
  const std::string path = temp_path("ioenv_enospc.log");
  FaultyFs faulty;
  faulty.disk_budget(10);
  ScopedIoEnv scoped(faulty);
  DurableAppender out;
  out.open(path);
  // The write crossing the budget is short; the retry hits ENOSPC.
  EXPECT_THROW(out.append("0123456789abcdef"), DiskFullError);
}

TEST(IoEnvTest, WriteFileAtomicOnEnospcLeavesTargetUntouched) {
  const std::string path = temp_path("ioenv_enospc_target.txt");
  write_file_atomic(path, "old contents\n");
  FaultyFs faulty;
  faulty.disk_budget(4);
  {
    ScopedIoEnv scoped(faulty);
    EXPECT_THROW(write_file_atomic(path, "new contents that do not fit\n"),
                 DiskFullError);
  }
  EXPECT_EQ(read_file(path), "old contents\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));  // temp cleaned up
}

TEST(IoEnvTest, FsyncFailureDropsDirtyPagesAndPoisonsTheAppender) {
  const std::string path = temp_path("ioenv_fsyncgate.log");
  FaultyFs faulty;
  ScopedIoEnv scoped(faulty);
  DurableAppender out;
  out.open(path);  // fsync #1: the parent-directory sync
  out.append("committed\n");
  out.sync();  // fsync #2: succeeds
  out.append("doomed\n");
  faulty.fail_fsync(faulty.sync_count() + 1);
  EXPECT_THROW(out.sync(), SyncFailedError);
  EXPECT_TRUE(out.sync_failed());
  // Sticky: the handle refuses further use even though the *next* fsync
  // would report success — that success would be over dropped pages.
  EXPECT_THROW(out.append("more\n"), SyncFailedError);
  EXPECT_THROW(out.sync(), SyncFailedError);
  // The shadow model agrees: only the committed record is durable.
  std::string durable;
  ASSERT_TRUE(faulty.durable_content(path, &durable));
  EXPECT_EQ(durable, "committed\n");
}

TEST(IoEnvTest, AppenderCreationIsNotDurableBeforeDirectoryFsync) {
  const std::string path = temp_path("ioenv_newname.log");
  FaultyFs faulty;
  {
    ScopedIoEnv scoped(faulty);
    // Crash exactly on the parent-directory fsync of open(): the inode may
    // hold synced bytes, but the *name* never became durable.
    faulty.crash_at(2);  // op 1 = open, op 2 = fsync_dir
    DurableAppender out;
    EXPECT_THROW(out.open(path), SyncFailedError);
    faulty.materialize_crash_state();
  }
  EXPECT_FALSE(file_exists(path));
}

TEST(IoEnvTest, RenameIsNotDurableBeforeDirectoryFsync) {
  const std::string path = temp_path("ioenv_rename.txt");
  write_file_atomic(path, "old\n");
  FaultyFs faulty;
  {
    ScopedIoEnv scoped(faulty);
    // write_file_atomic ops: open(1) write(2) fsync(3) rename(4) dir(5).
    faulty.crash_at(5);
    EXPECT_THROW(write_file_atomic(path, "new\n"), SyncFailedError);
    // In-cache view already shows the rename...
    EXPECT_EQ(read_file(path), "new\n");
    faulty.materialize_crash_state();
  }
  // ...but power loss before the dir fsync keeps the old file.
  EXPECT_EQ(read_file(path), "old\n");
}

TEST(IoEnvTest, WriteFileAtomicCrashEnumerationNeverTearsTheTarget) {
  const std::string path = temp_path("ioenv_enum.txt");
  // Pass 1: count the ops of a clean replacement.
  std::uint64_t total_ops = 0;
  {
    write_file_atomic(path, "old\n");
    FaultyFs probe;
    ScopedIoEnv scoped(probe);
    write_file_atomic(path, "new\n");
    total_ops = probe.op_count();
  }
  ASSERT_GE(total_ops, 4u);
  // Pass 2: crash at every boundary; the file is always whole — exactly
  // "old" or exactly "new", never a mix, never missing.
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    write_file_atomic(path, "old\n");
    FaultyFs faulty;
    faulty.crash_at(k);
    {
      ScopedIoEnv scoped(faulty);
      EXPECT_THROW(write_file_atomic(path, "new\n"), IoError)
          << "crash op " << k;
      faulty.materialize_crash_state();
    }
    const std::string survived = read_file(path);
    EXPECT_TRUE(survived == "old\n" || survived == "new\n")
        << "crash op " << k << " left: " << survived;
  }
}

TEST(IoEnvTest, AppenderRecordsSurviveCrashOnlyUpToTheLastFsync) {
  const std::string path = temp_path("ioenv_append_crash.log");
  FaultyFs faulty;
  {
    ScopedIoEnv scoped(faulty);
    DurableAppender out;
    out.open(path);
    out.append("one\n");
    out.sync();
    out.append("two\n");  // never synced
    const std::uint64_t next = faulty.op_count() + 1;
    faulty.crash_at(next);
    EXPECT_THROW(
        [&] {
          out.append("three\n");
          out.sync();
        }(),
        IoError);
    faulty.materialize_crash_state();
  }
  EXPECT_EQ(read_file(path), "one\n");
}

TEST(IoEnvTest, CheckedDirFsyncThrowsOnHardError) {
  const std::string dir = testing::TempDir();
  FaultyFs faulty;
  ScopedIoEnv scoped(faulty);
  checked_fsync_dir(dir);  // healthy: no throw
  faulty.fail_fsync(faulty.sync_count() + 1);
  EXPECT_THROW(checked_fsync_dir(dir), SyncFailedError);
}

// ---------------------------------------------------------------------------
// DurabilityPolicy + GroupCommitAppender

TEST(DurabilityPolicyTest, ParsesModesAndRejectsUnknown) {
  EXPECT_EQ(DurabilityPolicy::parse_mode("strict"),
            DurabilityPolicy::Mode::kStrict);
  EXPECT_EQ(DurabilityPolicy::parse_mode("grouped"),
            DurabilityPolicy::Mode::kGrouped);
  EXPECT_THROW(DurabilityPolicy::parse_mode("buffered"), InvalidArgument);
}

TEST(DurabilityPolicyTest, ValidateRejectsOutOfRangeKnobs) {
  DurabilityPolicy policy;
  policy.group_cells = 0;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy.group_cells = 2000000;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy.group_cells = 64;
  policy.group_ms = 0;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy.group_ms = 700000;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy.group_ms = 100;
  EXPECT_NO_THROW(policy.validate());
}

TEST(GroupCommitTest, StrictSyncsEveryRecord) {
  const std::string path = temp_path("gc_strict.log");
  GroupCommitAppender out;
  out.open(path, DurabilityPolicy{});
  out.append_record("a\n");
  out.append_record("b\n");
  out.append_record("c\n");
  EXPECT_EQ(out.sync_count(), 3u);
  EXPECT_EQ(out.pending(), 0u);
}

TEST(GroupCommitTest, GroupedSyncsEveryNRecordsAndOnFlush) {
  const std::string path = temp_path("gc_grouped.log");
  DurabilityPolicy policy;
  policy.mode = DurabilityPolicy::Mode::kGrouped;
  policy.group_cells = 3;
  policy.group_ms = 600000;  // effectively "cells only"
  GroupCommitAppender out;
  out.open(path, policy);
  out.append_record("1\n");
  out.append_record("2\n");
  EXPECT_EQ(out.sync_count(), 0u);
  EXPECT_EQ(out.pending(), 2u);
  out.append_record("3\n");  // hits the cell bound
  EXPECT_EQ(out.sync_count(), 1u);
  EXPECT_EQ(out.pending(), 0u);
  out.append_record("4\n");
  out.flush();  // forced flush syncs the partial group
  EXPECT_EQ(out.sync_count(), 2u);
  out.flush();  // nothing pending: no extra fsync
  EXPECT_EQ(out.sync_count(), 2u);
  EXPECT_EQ(read_file(path), "1\n2\n3\n4\n");
}

TEST(GroupCommitTest, GroupedCrashLosesAtMostTheOpenGroup) {
  const std::string path = temp_path("gc_crash.log");
  FaultyFs faulty;
  {
    ScopedIoEnv scoped(faulty);
    DurabilityPolicy policy;
    policy.mode = DurabilityPolicy::Mode::kGrouped;
    policy.group_cells = 2;
    policy.group_ms = 600000;
    GroupCommitAppender out;
    out.open(path, policy);
    out.append_record("1\n");
    out.append_record("2\n");  // group of 2 → synced
    out.append_record("3\n");  // open group
    faulty.crash_at(faulty.op_count() + 1);
    EXPECT_THROW(
        [&] {
          out.append_record("4\n");
          out.flush();
        }(),
        IoError);
    faulty.materialize_crash_state();
  }
  EXPECT_EQ(read_file(path), "1\n2\n");
}

TEST(GroupCommitTest, OpenRejectsInvalidPolicy) {
  DurabilityPolicy policy;
  policy.group_cells = 0;
  GroupCommitAppender out;
  EXPECT_THROW(out.open(temp_path("gc_bad.log"), policy), InvalidArgument);
}

}  // namespace
}  // namespace accu::util

#endif  // ACCU_HAVE_POSIX_IO
