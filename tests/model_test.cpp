// Tests for the problem-model layer: BenefitModel, AccuInstance validation,
// Realization sampling and probabilities.

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/realization.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

// --------------------------------------------------------- BenefitModel ----

TEST(BenefitModelTest, UniformAndAccessors) {
  const BenefitModel m = BenefitModel::uniform(3, 2.0, 1.0);
  EXPECT_EQ(m.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(m.friend_benefit(1), 2.0);
  EXPECT_DOUBLE_EQ(m.fof_benefit(1), 1.0);
  EXPECT_DOUBLE_EQ(m.upgrade_gain(1), 1.0);
  EXPECT_TRUE(m.has_strict_gap());
}

TEST(BenefitModelTest, PaperDefaultSplitsByClass) {
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious,
                                          UserClass::kReckless};
  const BenefitModel m = BenefitModel::paper_default(classes, 2.0, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(m.friend_benefit(0), 2.0);
  EXPECT_DOUBLE_EQ(m.friend_benefit(1), 50.0);
  EXPECT_DOUBLE_EQ(m.fof_benefit(1), 1.0);
}

TEST(BenefitModelTest, RejectsInvalid) {
  EXPECT_THROW(BenefitModel({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(BenefitModel({1.0}, {2.0}), InvalidArgument);   // B_f < B_fof
  EXPECT_THROW(BenefitModel({1.0}, {-0.5}), InvalidArgument);  // negative
}

TEST(BenefitModelTest, StrictGapDetection) {
  const BenefitModel equal = BenefitModel::uniform(2, 1.0, 1.0);
  EXPECT_FALSE(equal.has_strict_gap());
}

// ---------------------------------------------------------- AccuInstance ----

Graph path_graph(NodeId n) {
  graph::GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1, 0.5);
  return b.build();
}

TEST(AccuInstanceTest, ValidInstanceAccessors) {
  const Graph g = path_graph(4);
  const std::vector<UserClass> classes = {
      UserClass::kReckless, UserClass::kCautious, UserClass::kReckless,
      UserClass::kReckless};
  const AccuInstance instance(g, classes, {0.5, 0.0, 0.7, 0.9}, {1, 2, 1, 1},
                              BenefitModel::uniform(4, 2.0, 1.0));
  EXPECT_EQ(instance.num_nodes(), 4u);
  EXPECT_EQ(instance.num_cautious(), 1u);
  EXPECT_EQ(instance.num_reckless(), 3u);
  EXPECT_TRUE(instance.is_cautious(1));
  EXPECT_FALSE(instance.is_cautious(0));
  EXPECT_EQ(instance.threshold(1), 2u);
  EXPECT_DOUBLE_EQ(instance.accept_prob(2), 0.7);
  EXPECT_EQ(instance.cautious_users(), std::vector<NodeId>{1});
}

TEST(AccuInstanceTest, RejectsSizeMismatch) {
  const Graph g = path_graph(3);
  EXPECT_THROW(AccuInstance(g, std::vector<UserClass>(2), {0.5, 0.5, 0.5},
                            {1, 1, 1}, BenefitModel::uniform(3, 2, 1)),
               InvalidArgument);
}

TEST(AccuInstanceTest, RejectsBadAcceptProbability) {
  const Graph g = path_graph(2);
  EXPECT_THROW(AccuInstance(g, std::vector<UserClass>(2), {1.5, 0.5}, {1, 1},
                            BenefitModel::uniform(2, 2, 1)),
               InvalidArgument);
}

TEST(AccuInstanceTest, RejectsCautiousCautiousEdge) {
  const Graph g = path_graph(3);  // edges (0,1), (1,2)
  const std::vector<UserClass> classes = {
      UserClass::kCautious, UserClass::kCautious, UserClass::kReckless};
  EXPECT_THROW(AccuInstance(g, classes, {0.0, 0.0, 0.5}, {1, 1, 1},
                            BenefitModel::uniform(3, 2, 1)),
               InvalidArgument);
}

TEST(AccuInstanceTest, RejectsZeroThresholdForCautious) {
  const Graph g = path_graph(3);
  const std::vector<UserClass> classes = {
      UserClass::kReckless, UserClass::kCautious, UserClass::kReckless};
  EXPECT_THROW(AccuInstance(g, classes, {0.5, 0.0, 0.5}, {1, 0, 1},
                            BenefitModel::uniform(3, 2, 1)),
               InvalidArgument);
}

TEST(AccuInstanceTest, RejectsInfeasibleThreshold) {
  const Graph g = path_graph(3);  // node 1 has 2 reckless neighbors
  const std::vector<UserClass> classes = {
      UserClass::kReckless, UserClass::kCautious, UserClass::kReckless};
  EXPECT_THROW(AccuInstance(g, classes, {0.5, 0.0, 0.5}, {1, 3, 1},
                            BenefitModel::uniform(3, 2, 1)),
               InvalidArgument);
}

// ----------------------------------------------------------- Realization ----

AccuInstance small_instance() {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.25);
  return AccuInstance(b.build(), std::vector<UserClass>(3),
                      {0.5, 0.5, 0.5}, {1, 1, 1},
                      BenefitModel::uniform(3, 2, 1));
}

TEST(RealizationTest, CertainHasEverything) {
  const AccuInstance instance = small_instance();
  const Realization truth = Realization::certain(instance);
  EXPECT_TRUE(truth.edge_present(0));
  EXPECT_TRUE(truth.edge_present(1));
  EXPECT_TRUE(truth.reckless_accepts(2));
  EXPECT_EQ(truth.realized_degree(instance.graph(), 1), 2u);
}

TEST(RealizationTest, SampleFrequenciesMatchProbabilities) {
  const AccuInstance instance = small_instance();
  util::Rng rng(21);
  int edge0 = 0, edge1 = 0, coin0 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const Realization truth = Realization::sample(instance, rng);
    edge0 += truth.edge_present(0);
    edge1 += truth.edge_present(1);
    coin0 += truth.reckless_accepts(0);
  }
  EXPECT_NEAR(edge0 / static_cast<double>(trials), 0.5, 0.02);
  EXPECT_NEAR(edge1 / static_cast<double>(trials), 0.25, 0.02);
  EXPECT_NEAR(coin0 / static_cast<double>(trials), 0.5, 0.02);
}

TEST(RealizationTest, ProbabilityOfWorld) {
  const AccuInstance instance = small_instance();
  // Edges: present, absent.  Coins: accept, reject, accept.
  const Realization truth({true, false}, {true, false, true});
  // p = 0.5 · (1 − 0.25) · 0.5 · 0.5 · 0.5 = 0.046875
  EXPECT_NEAR(truth.probability(instance), 0.046875, 1e-12);
}

TEST(RealizationTest, ProbabilitiesSumToOneOverEnumeration) {
  const AccuInstance instance = small_instance();
  double total = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    const Realization truth(
        {(mask & 1) != 0, (mask & 2) != 0},
        {(mask & 4) != 0, (mask & 8) != 0, (mask & 16) != 0});
    total += truth.probability(instance);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RealizationTest, CautiousCoinIgnoredInProbability) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious};
  const AccuInstance instance(b.build(), classes, {0.5, 0.0}, {1, 1},
                              BenefitModel::uniform(2, 2, 1));
  const Realization a({true}, {true, true});
  const Realization b2({true}, {true, false});
  EXPECT_DOUBLE_EQ(a.probability(instance), b2.probability(instance));
  EXPECT_DOUBLE_EQ(a.probability(instance), 0.5);
}

TEST(RealizationTest, RealizedDegreeCountsPresentOnly) {
  const AccuInstance instance = small_instance();
  const Realization truth({true, false}, {true, true, true});
  EXPECT_EQ(truth.realized_degree(instance.graph(), 1), 1u);
  EXPECT_EQ(truth.realized_degree(instance.graph(), 2), 0u);
}

TEST(RealizationTest, RealizedGraphKeepsPresentEdges) {
  const AccuInstance instance = small_instance();
  const Realization truth({true, false}, {true, true, true});
  const Graph g = realized_graph(instance.graph(), truth);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_DOUBLE_EQ(g.edge_prob(0), 1.0);
}

TEST(RealizationTest, RealizedGraphDegreesMatchRealizedDegree) {
  util::Rng rng(31);
  graph::GraphBuilder b = graph::erdos_renyi(30, 0.2, rng);
  b.assign_uniform_probs(rng);
  const AccuInstance instance(b.build(), std::vector<UserClass>(30),
                              std::vector<double>(30, 0.5),
                              std::vector<std::uint32_t>(30, 1),
                              BenefitModel::uniform(30, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  const Graph g = realized_graph(instance.graph(), truth);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(g.degree(v), truth.realized_degree(instance.graph(), v));
  }
}

}  // namespace
}  // namespace accu
