// Intra-cell parallelism (core/task_pool.hpp + the adopt_task_pool seam) —
// ISSUE 9.
//
//   * ScoreTaskPoolTest         — the pool itself: every index runs exactly
//     once at any width, batches are reusable, width <= 1 stays inline.
//   * ExperimentCellParallelTest — the determinism contract end to end:
//     full simulations of the parallel strategies (lookahead beam fan-out,
//     batched rescore chunks) are TRACE-IDENTICAL for any cell_threads,
//     and score_batch_all matches the single-range rescore bit for bit.
//
// Suite names deliberately match tools/ci.sh regexes: "Score…" rides the
// engine gate and the forced-ISA stages, "Experiment…" rides the TSan
// stage, which is what actually exercises cross-thread visibility here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/score.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/lookahead.hpp"
#include "core/task_pool.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

TEST(ScoreTaskPoolTest, RunsEveryIndexExactlyOnceAtAnyWidth) {
  for (const unsigned width : {0u, 1u, 2u, 3u, 5u}) {
    TaskPool pool(width);
    EXPECT_GE(pool.threads(), 1u);
    for (const std::size_t n : {0ull, 1ull, 2ull, 17ull, 256ull}) {
      std::vector<std::atomic<std::uint32_t>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "width " << width << " n " << n
                                      << " index " << i;
      }
    }
  }
}

TEST(ScoreTaskPoolTest, ReusableAcrossManyBatches) {
  TaskPool pool(3);
  std::vector<std::atomic<std::uint64_t>> cell(64);
  for (auto& c : cell) c.store(0);
  std::uint64_t expected = 0;
  for (int batch = 1; batch <= 50; ++batch) {
    pool.run(cell.size(), [&](std::size_t i) {
      cell[i].fetch_add(static_cast<std::uint64_t>(batch));
    });
    expected += static_cast<std::uint64_t>(batch);
  }
  for (auto& c : cell) ASSERT_EQ(c.load(), expected);
}

TEST(ScoreTaskPoolTest, WidthOneRunsInlineOnTheCaller) {
  TaskPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool on_caller = true;
  pool.run(32, [&](std::size_t) {
    on_caller &= (std::this_thread::get_id() == caller);
  });
  EXPECT_TRUE(on_caller);
}

// ---------------------------------------------------------------------------
// End-to-end determinism across cell_threads
// ---------------------------------------------------------------------------

AccuInstance make_test_instance(std::uint64_t seed, NodeId n = 100) {
  util::Rng rng(seed);
  graph::GraphBuilder b = graph::holme_kim(n, 4, 0.3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(n, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(n, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < n && cautious.size() < n / 10; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId x : cautious) adjacent |= g.has_edge(v, x);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform();
  return AccuInstance(g, classes, q, thresholds,
                      BenefitModel::paper_default(classes));
}

/// Simulates `strategy` under the given pool width and returns the result;
/// `rng_end` receives the strategy RNG's final state for stream pinning.
template <typename MakeStrategy>
SimulationResult run_at_width(const AccuInstance& instance,
                              MakeStrategy make_strategy, unsigned width,
                              std::uint64_t* rng_end) {
  SimWorkspace ws;
  ws.set_cell_threads(width);
  util::Rng truth_rng(777);
  const Realization& truth = ws.sample_truth(instance, truth_rng);
  auto strategy = make_strategy();
  util::Rng rng(42);
  SimulationResult out;
  simulate_into(instance, truth, strategy, 40, rng, ws.reset_view(instance),
                ws, out);
  *rng_end = rng();
  return out;
}

template <typename MakeStrategy>
void expect_trace_identical_across_widths(const AccuInstance& instance,
                                          MakeStrategy make_strategy) {
  std::uint64_t base_rng_end = 0;
  const SimulationResult base =
      run_at_width(instance, make_strategy, 1, &base_rng_end);
  ASSERT_FALSE(base.trace.empty());
  for (const unsigned width : {2u, 3u, 5u}) {
    std::uint64_t rng_end = 0;
    const SimulationResult got =
        run_at_width(instance, make_strategy, width, &rng_end);
    ASSERT_EQ(got.trace.size(), base.trace.size()) << "width " << width;
    for (std::size_t i = 0; i < base.trace.size(); ++i) {
      ASSERT_EQ(got.trace[i].target, base.trace[i].target)
          << "width " << width << " round " << i;
      ASSERT_EQ(got.trace[i].accepted, base.trace[i].accepted)
          << "width " << width << " round " << i;
    }
    EXPECT_EQ(got.total_benefit, base.total_benefit) << "width " << width;
    EXPECT_EQ(got.num_accepted, base.num_accepted) << "width " << width;
    EXPECT_EQ(rng_end, base_rng_end) << "width " << width;
  }
}

TEST(ExperimentCellParallelTest, LookaheadTraceIdenticalForAnyCellThreads) {
  const AccuInstance instance = make_test_instance(5);
  expect_trace_identical_across_widths(instance, [] {
    LookaheadStrategy::Config config;
    config.beam = 6;
    config.scenario_samples = 3;
    config.weights = {0.5, 0.5};
    return LookaheadStrategy(config);
  });
}

TEST(ExperimentCellParallelTest,
     LookaheadScalarTwinTraceIdenticalForAnyCellThreads) {
  const AccuInstance instance = make_test_instance(6);
  expect_trace_identical_across_widths(instance, [] {
    LookaheadStrategy::Config config;
    config.beam = 5;
    config.scenario_samples = 2;
    config.flat_scoring = false;  // scalar twin must parallelize identically
    return LookaheadStrategy(config);
  });
}

TEST(ExperimentCellParallelTest, BatchedTraceIdenticalForAnyCellThreads) {
  // Large enough that score_batch_all actually chunks across the pool
  // (chunking starts at 2 * 256 candidates).
  const AccuInstance instance = make_test_instance(7, 700);
  expect_trace_identical_across_widths(instance, [] {
    return BatchedAbmStrategy({0.5, 0.5}, 5);
  });
}

TEST(ExperimentCellParallelTest, ScoreBatchAllMatchesSingleRangeRescore) {
  const AccuInstance instance = make_test_instance(8, 1200);  // forces chunks
  const NodeId n = instance.num_nodes();
  ScorePack pack;
  pack.build(instance);
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance, rng);
  AttackerView view(instance);
  for (NodeId t = 0; t < 15; ++t) {
    if (t % 4 == 0) {
      view.record_rejection(t);
    } else {
      view.record_acceptance(t, truth);
    }
  }
  const PotentialWeights weights{0.4, 0.6};
  std::vector<double> ref(n);
  score_batch(pack, view, weights, 0, n, ref.data());
  for (const unsigned width : {1u, 2u, 4u, 9u}) {
    TaskPool pool(width);
    ScoreBatchScratch scratch;
    std::vector<double> got(n, -1.0);
    score_batch_all(pack, view, weights, scratch, &pool, got.data());
    ASSERT_EQ(got, ref) << "width " << width;
  }
}

}  // namespace
}  // namespace accu
