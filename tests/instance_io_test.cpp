// Tests for ACCU instance serialization: exact round-trips (including the
// generalized cautious model), malformed-input rejection, and file I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "core/instance_io.hpp"
#include "datasets/datasets.hpp"
#include "util/error.hpp"
#include "util/io_env.hpp"

namespace accu {
namespace {

void expect_same_instance(const AccuInstance& a, const AccuInstance& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges());
  for (EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    const graph::EdgeEndpoints ep = a.graph().endpoints(e);
    const auto mirrored = b.graph().find_edge(ep.lo, ep.hi);
    ASSERT_TRUE(mirrored.has_value());
    EXPECT_DOUBLE_EQ(b.graph().edge_prob(*mirrored), a.graph().edge_prob(e));
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(a.user_class(u), b.user_class(u));
    EXPECT_DOUBLE_EQ(a.accept_prob(u), b.accept_prob(u));
    EXPECT_EQ(a.threshold(u), b.threshold(u));
    EXPECT_DOUBLE_EQ(a.benefits().friend_benefit(u),
                     b.benefits().friend_benefit(u));
    EXPECT_DOUBLE_EQ(a.benefits().fof_benefit(u),
                     b.benefits().fof_benefit(u));
    if (a.is_cautious(u)) {
      EXPECT_DOUBLE_EQ(a.cautious_accept_prob(u, false),
                       b.cautious_accept_prob(u, false));
      EXPECT_DOUBLE_EQ(a.cautious_accept_prob(u, true),
                       b.cautious_accept_prob(u, true));
    }
  }
  EXPECT_EQ(a.has_generalized_cautious(), b.has_generalized_cautious());
}

TEST(InstanceIoTest, RoundTripDataset) {
  util::Rng rng(1);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 8;
  const AccuInstance original =
      datasets::make_dataset("facebook", config, rng);
  std::stringstream buffer;
  write_instance(original, buffer);
  const AccuInstance loaded = read_instance(buffer);
  expect_same_instance(original, loaded);
}

TEST(InstanceIoTest, RoundTripGeneralizedModel) {
  util::Rng rng(2);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 6;
  config.cautious_below_prob = 0.125;
  config.cautious_above_prob = 0.875;
  const AccuInstance original =
      datasets::make_dataset("facebook", config, rng);
  ASSERT_TRUE(original.has_generalized_cautious());
  std::stringstream buffer;
  write_instance(original, buffer);
  const AccuInstance loaded = read_instance(buffer);
  expect_same_instance(original, loaded);
}

TEST(InstanceIoTest, FileRoundTrip) {
  util::Rng rng(3);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 5;
  const AccuInstance original =
      datasets::make_dataset("twitter", config, rng);
  const std::string path = testing::TempDir() + "accu_instance_test.accu";
  write_instance_file(original, path);
  const AccuInstance loaded = read_instance_file(path);
  expect_same_instance(original, loaded);
}

TEST(InstanceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "nodes 2 edges 1\n"
      "# another\n"
      "e 0 1 0.5\n"
      "n 0 R 0.5 1 2 1 0 1\n"
      "n 1 C 0 1 50 1 0 1\n");
  const AccuInstance instance = read_instance(in);
  EXPECT_EQ(instance.num_nodes(), 2u);
  EXPECT_TRUE(instance.is_cautious(1));
  EXPECT_DOUBLE_EQ(instance.benefits().friend_benefit(1), 50.0);
}

TEST(InstanceIoTest, RejectsMalformedInput) {
  {
    std::stringstream in("bogus\n");
    EXPECT_THROW(read_instance(in), IoError);
  }
  {
    std::stringstream in("nodes 2 edges 1\ne 0 5 0.5\n");
    EXPECT_THROW(read_instance(in), IoError);  // endpoint out of range
  }
  {
    std::stringstream in("nodes 2 edges 1\ne 0 1 1.5\n");
    EXPECT_THROW(read_instance(in), IoError);  // probability out of range
  }
  {
    std::stringstream in(
        "nodes 2 edges 2\ne 0 1 0.5\ne 1 0 0.5\n");
    EXPECT_THROW(read_instance(in), IoError);  // duplicate edge
  }
  {
    std::stringstream in("nodes 1 edges 0\nn 0 X 0.5 1 2 1 0 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // bad class letter
  }
  {
    std::stringstream in(
        "nodes 2 edges 0\nn 0 R 0.5 1 2 1 0 1\nn 0 R 0.5 1 2 1 0 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // duplicate node line
  }
  {
    std::stringstream in("nodes 2 edges 0\nn 0 R 0.5 1 2 1 0 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // missing node line
  }
}

TEST(InstanceIoTest, RejectsSelfLoopWithLineNumber) {
  std::stringstream in(
      "nodes 2 edges 1\n"
      "e 1 1 0.5\n");
  try {
    read_instance(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("self-loop"), std::string::npos) << what;
  }
}

TEST(InstanceIoTest, DuplicateEdgeDiagnosticNamesEndpoints) {
  std::stringstream in(
      "nodes 3 edges 2\n"
      "e 0 1 0.5\n"
      "e 1 0 0.25\n");  // same undirected pair, reversed
  try {
    read_instance(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("0"), std::string::npos) << what;
    EXPECT_NE(what.find("1"), std::string::npos) << what;
  }
}

TEST(InstanceIoTest, RejectsOverflowingCounts) {
  {
    // One past the uint32 id space: silently narrowing would wrap to 0.
    std::stringstream in("nodes 4294967295 edges 0\n");
    try {
      read_instance(in);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos)
          << e.what();
    }
  }
  {
    // 2^31 edges would overflow the 2m slot space.
    std::stringstream in("nodes 10 edges 2147483648\n");
    EXPECT_THROW(read_instance(in), IoError);
  }
  {
    // Far beyond 64 bits: must not wrap through unsigned long long either.
    std::stringstream in("nodes 99999999999999999999 edges 0\n");
    EXPECT_THROW(read_instance(in), IoError);
  }
}

TEST(InstanceIoTest, RejectsOutOfRangeTheta) {
  const auto expect_theta_rejected = [](const std::string& theta) {
    std::stringstream in(
        "nodes 2 edges 1\n"
        "e 0 1 0.5\n"
        "n 0 R 0.5 1 2 1 0 1\n"
        "n 1 C 0 " + theta + " 50 1 0 1\n");
    try {
      read_instance(in);
      FAIL() << "expected IoError for theta=" << theta;
    } catch (const IoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 4"), std::string::npos) << what;
      EXPECT_NE(what.find("theta"), std::string::npos) << what;
    }
  };
  // Each of these used to wrap silently through the uint32 cast.
  expect_theta_rejected("-1");
  expect_theta_rejected("4.3e9");
  expect_theta_rejected("1.5");
  expect_theta_rejected("nan");
}

TEST(InstanceIoTest, RejectsTrailingContent) {
  std::stringstream in(
      "nodes 2 edges 1\n"
      "e 0 1 0.5\n"
      "n 0 R 0.5 1 2 1 0 1\n"
      "n 1 R 0.5 1 2 1 0 1\n"
      "e 0 1 0.5\n");
  try {
    read_instance(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
}

TEST(InstanceIoTest, RejectsNonFiniteValues) {
  {
    std::stringstream in("nodes 2 edges 1\ne 0 1 nan\n");
    EXPECT_THROW(read_instance(in), IoError);  // NaN edge probability
  }
  {
    std::stringstream in("nodes 2 edges 1\ne 0 1 inf\n");
    EXPECT_THROW(read_instance(in), IoError);  // Inf edge probability
  }
  {
    std::stringstream in(
        "nodes 1 edges 0\nn 0 R nan 1 2 1 0 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // NaN accept probability
  }
  {
    std::stringstream in(
        "nodes 1 edges 0\nn 0 R 0.5 1 inf 1 0 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // Inf friend benefit
  }
  {
    std::stringstream in(
        "nodes 1 edges 0\nn 0 C 0 1 2 1 nan 1\n");
    EXPECT_THROW(read_instance(in), IoError);  // NaN q1
  }
  {
    std::stringstream in(
        "nodes 1 edges 0\nn 0 R 0.5 1 2 1 0 2.5\n");
    EXPECT_THROW(read_instance(in), IoError);  // q2 outside [0,1]
  }
}

TEST(InstanceIoTest, ErrorsCarryLineNumbers) {
  {
    // NaN node probability on (1-based) line 4.
    std::stringstream in(
        "nodes 2 edges 1\n"
        "e 0 1 0.5\n"
        "n 0 R 0.5 1 2 1 0 1\n"
        "n 1 R nan 1 2 1 0 1\n");
    try {
      read_instance(in);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
          << e.what();
    }
  }
  {
    // Truncated edge section: the message names the last line read and
    // the shortfall.
    std::stringstream in("nodes 3 edges 2\ne 0 1 0.5\n");
    try {
      read_instance(in);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("truncated"), std::string::npos) << what;
      EXPECT_NE(what.find("expected 2 edge lines, got 1"), std::string::npos)
          << what;
    }
  }
}

TEST(InstanceIoTest, TruncatedNodeSectionNamesShortfall) {
  std::stringstream in(
      "nodes 2 edges 1\n"
      "e 0 1 0.5\n"
      "n 0 R 0.5 1 2 1 0 1\n");
  try {
    read_instance(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected 2 node lines, got 1"), std::string::npos)
        << what;
  }
}

TEST(InstanceIoTest, ConstructorValidationStillApplies) {
  // A cautious user with an infeasible threshold round-trips into the
  // instance constructor's validation, not silent acceptance.
  std::stringstream in(
      "nodes 2 edges 1\n"
      "e 0 1 0.5\n"
      "n 0 R 0.5 1 2 1 0 1\n"
      "n 1 C 0 5 50 1 0 1\n");  // θ = 5 > degree
  EXPECT_THROW(read_instance(in), InvalidArgument);
}

TEST(InstanceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_instance_file("/nonexistent/nope.accu"), IoError);
}

#ifdef ACCU_HAVE_POSIX_IO

AccuInstance small_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 5;
  return datasets::make_dataset("facebook", config, rng);
}

TEST(InstanceIoTest, EnospcDuringWriteLeavesThePreviousFileIntact) {
  const std::string path = testing::TempDir() + "accu_instance_enospc.accu";
  const AccuInstance first = small_instance(3);
  write_instance_file(first, path);
  {
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.disk_budget(64);  // the replacement tears off mid-write
    EXPECT_THROW(write_instance_file(small_instance(4), path),
                 DiskFullError);
    faulty.materialize_crash_state();
  }
  // Atomic replace: the torn temp never reached `path`.
  expect_same_instance(read_instance_file(path), first);
}

TEST(InstanceIoTest, ShortWritesStillProduceACompleteFile) {
  const std::string path = testing::TempDir() + "accu_instance_short.accu";
  const AccuInstance original = small_instance(5);
  util::FaultyFs faulty;
  util::ScopedIoEnv scoped(faulty);
  faulty.short_write_cap(7);  // every write() advances at most 7 bytes
  write_instance_file(original, path);
  expect_same_instance(read_instance_file(path), original);
}

TEST(InstanceIoTest, FsyncFailureDuringWriteSurfacesAsSyncLost) {
  const std::string path = testing::TempDir() + "accu_instance_sync.accu";
  const AccuInstance first = small_instance(6);
  write_instance_file(first, path);
  {
    util::FaultyFs faulty;
    util::ScopedIoEnv scoped(faulty);
    faulty.fail_fsync(faulty.sync_count() + 1);
    EXPECT_THROW(write_instance_file(small_instance(7), path),
                 SyncFailedError);
    faulty.materialize_crash_state();
  }
  expect_same_instance(read_instance_file(path), first);
}

#endif  // ACCU_HAVE_POSIX_IO

}  // namespace
}  // namespace accu
