// Unit tests for the utility substrate: RNG determinism and distribution
// sanity, streaming statistics, tables/CSV, option parsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/backoff.hpp"
#include "util/bitvec.hpp"
#include "util/cancel.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/exit_codes.hpp"
#include "util/lockfile.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace accu::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.5);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremesAreDeterministic) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BelowCoversRangeUniformly) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.range(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::vector<std::size_t> sorted = picks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (const std::size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(12);
  const auto picks = rng.sample_without_replacement(5, 5);
  std::vector<std::size_t> sorted = picks;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(13);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, GeometricSkipsMeanMatches) {
  Rng rng(14);
  const double p = 0.2;
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.geometric_skips(p));
  }
  // Mean failures before success = (1-p)/p = 4.
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(RngTest, GeometricSkipsCertainSuccess) {
  Rng rng(15);
  EXPECT_EQ(rng.geometric_skips(1.0), 0u);
}

TEST(RngTest, FillRawMatchesSequentialDraws) {
  Rng a(77);
  Rng b(77);
  std::vector<std::uint64_t> bulk(1000);
  a.fill_raw(bulk.data(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    ASSERT_EQ(bulk[i], b()) << "draw " << i;
  }
  // Both generators must land on the same state.
  EXPECT_EQ(a(), b());
}

TEST(RngTest, BernoulliThresholdMatchesUniformCompare) {
  // The integer-threshold compare must reproduce `uniform() < p` for every
  // draw — including thresholds next to representability boundaries.
  Rng prng(16);
  std::vector<double> ps = {0.5, 0.25, 1e-9, 1.0 - 1e-9, 0x1.0p-53,
                            1.0 - 0x1.0p-53};
  for (int i = 0; i < 40; ++i) ps.push_back(prng.uniform());
  for (const double p : ps) {
    if (p <= 0.0 || p >= 1.0) continue;
    const std::uint64_t thr = Rng::bernoulli_threshold(p);
    Rng draws(17);
    Rng oracle(17);
    for (int i = 0; i < 2000; ++i) {
      const bool fast = (draws() >> 11) < thr;
      const bool ref = oracle.uniform() < p;
      ASSERT_EQ(fast, ref) << "p=" << p << " draw " << i;
    }
  }
}

TEST(CounterRngTest, MatchesSplitmixStreamRandomAccess) {
  const std::uint64_t seed = 0xfeed1234u;
  CounterRng counter(seed);
  std::uint64_t state = seed;
  std::vector<std::uint64_t> stream(64);
  for (auto& x : stream) x = splitmix64_next(state);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(counter.at(i), stream[i]) << i;
  }
  // Out-of-order and bulk access agree with random access.
  EXPECT_EQ(counter.at(63), stream[63]);
  EXPECT_EQ(counter.at(0), stream[0]);
  std::vector<std::uint64_t> bulk(32);
  counter.fill(16, bulk.data(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(bulk[i], stream[16 + i]) << i;
  }
}

// --------------------------------------------------------------- BitVec ----

TEST(BitVecTest, SetGetResizeAndTailInvariant) {
  BitVec bits(70, false);
  bits.set(0, true);
  bits.set(63, true);
  bits.set(69, true);
  EXPECT_TRUE(bits.get(0));
  EXPECT_TRUE(bits.get(63));
  EXPECT_FALSE(bits.get(64));
  EXPECT_TRUE(bits.get(69));
  EXPECT_EQ(bits.words().size(), 2u);
  // Tail bits past size() stay zero through every mutator.
  EXPECT_EQ(bits.words()[1] >> 6, 0u);
  bits.assign(70, true);
  EXPECT_EQ(bits.words()[1], (~0ull) >> (64 - 6));
  bits.resize(64);
  bits.resize(70);
  for (std::size_t i = 64; i < 70; ++i) EXPECT_FALSE(bits.get(i));
}

TEST(BitVecTest, CopyFromVectorBoolAndBitVec) {
  std::vector<bool> src(130, false);
  for (std::size_t i = 0; i < src.size(); i += 7) src[i] = true;
  BitVec a;
  a.copy_from(src);
  ASSERT_EQ(a.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(a.get(i), src[i]);
  BitVec b;
  b.copy_from(a);
  ASSERT_EQ(b.size(), a.size());
  EXPECT_TRUE(std::equal(a.words().begin(), a.words().end(),
                         b.words().begin(), b.words().end()));
}

// ---------------------------------------------------------- RunningStat ----

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance of this classic sample is 4; unbiased = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat all, left, right;
  Rng rng(16);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

// ----------------------------------------------------- SeriesAccumulator ----

TEST(SeriesAccumulatorTest, PerIndexMeans) {
  SeriesAccumulator acc;
  acc.add_run({1.0, 2.0, 3.0});
  acc.add_run({3.0, 4.0});
  EXPECT_EQ(acc.length(), 3u);
  EXPECT_DOUBLE_EQ(acc.at(0).mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.at(1).mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.at(2).mean(), 3.0);
  EXPECT_EQ(acc.at(2).count(), 1u);
}

TEST(SeriesAccumulatorTest, AddAtGrows) {
  SeriesAccumulator acc;
  acc.add_at(5, 7.0);
  EXPECT_EQ(acc.length(), 6u);
  EXPECT_EQ(acc.at(0).count(), 0u);
  EXPECT_DOUBLE_EQ(acc.at(5).mean(), 7.0);
}

// -------------------------------------------------------------- Histogram ----

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(HistogramTest, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(HistogramTest, NanSamplesAreCountedNotBinned) {
  // floor(NaN) cast to an integer is UB; a NaN sample must land in the
  // nan_count() tally without disturbing any bin or the total.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(-std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.count(2), 1u);
  for (std::size_t b : {0u, 1u, 3u, 4u}) EXPECT_EQ(h.count(b), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 1.0);
}

// ------------------------------------------------------------------ Table ----

TEST(TableTest, AlignedPrintContainsCells) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.25, 2);
  t.row().cell("b").cell_int(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  Table t({"x", "y"});
  t.row().cell("a,b").cell("c");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n\"a,b\",c\n");
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

// ---------------------------------------------------------------- Options ----

TEST(OptionsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=2.5", "--flag", "pos1"};
  Options opts(5, argv);
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(opts.get_double("beta", 0.0), 2.5);
  EXPECT_TRUE(opts.get_bool("flag", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(OptionsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("k", 123), 123);
  EXPECT_DOUBLE_EQ(opts.get_double("x", 1.5), 1.5);
  EXPECT_EQ(opts.get("name", "d"), "d");
  EXPECT_FALSE(opts.has("k"));
}

TEST(OptionsTest, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--k=abc"};
  Options opts(2, argv);
  EXPECT_THROW(opts.get_int("k", 0), InvalidArgument);
}

TEST(OptionsTest, UnknownOptionDetected) {
  const char* argv[] = {"prog", "--typo=1"};
  Options opts(2, argv);
  opts.declare("k", "budget");
  EXPECT_THROW(opts.check_unknown(), InvalidArgument);
}

TEST(OptionsTest, ResponseFileSuppliesDefaults) {
  const std::string path = testing::TempDir() + "accu_options_test.opts";
  {
    std::ofstream os(path);
    os << "# experiment defaults\n"
          "\n"
          "k=250\n"
          "--scale=0.5\n"
          "verbose\n";
  }
  const char* argv[] = {"prog", "--k=99"};
  Options opts(2, argv);
  opts.load_defaults_file(path);
  EXPECT_EQ(opts.get_int("k", 0), 99);  // command line wins
  EXPECT_DOUBLE_EQ(opts.get_double("scale", 0.0), 0.5);
  EXPECT_TRUE(opts.get_bool("verbose", false));
}

TEST(OptionsTest, ResponseFileErrors) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_THROW(opts.load_defaults_file("/nonexistent/opts"), IoError);
  const std::string path = testing::TempDir() + "accu_options_bad.opts";
  {
    std::ofstream os(path);
    os << "=value\n";
  }
  EXPECT_THROW(opts.load_defaults_file(path), InvalidArgument);
}

TEST(OptionsTest, DeclaredOptionPasses) {
  const char* argv[] = {"prog", "--k=5"};
  Options opts(2, argv);
  opts.declare("k", "budget");
  EXPECT_NO_THROW(opts.check_unknown());
}

TEST(OptionsTest, ErrorsNameTheFlag) {
  const char* argv[] = {"prog", "--budget=abc", "--rate=xyz", "--flag=maybe"};
  Options opts(4, argv);
  try {
    opts.get_int("budget", 0);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--budget"), std::string::npos);
  }
  try {
    opts.get_double("rate", 0.0);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--rate"), std::string::npos);
  }
  try {
    opts.get_bool("flag", false);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--flag"), std::string::npos);
  }
}

TEST(OptionsTest, OutOfRangeValuesAreDiagnosed) {
  const char* argv[] = {"prog", "--k=99999999999999999999999",
                        "--x=1e999999"};
  Options opts(3, argv);
  try {
    opts.get_int("k", 0);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  try {
    opts.get_double("x", 0.0);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
}

TEST(OptionsTest, UnknownOptionSuggestsNearestDeclared) {
  const char* argv[] = {"prog", "--fault-rte=0.1"};
  Options opts(2, argv);
  opts.declare("fault-rate", "fault probability").declare("k", "budget");
  try {
    opts.check_unknown();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--fault-rte"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --fault-rate?"), std::string::npos)
        << what;
  }
}

// ---------------------------------------------------------------- Backoff ----

TEST(BackoffTest, NonePolicyNeverRetries) {
  const RetryPolicy policy = RetryPolicy::none();
  EXPECT_FALSE(policy.should_retry(1));
  EXPECT_STREQ(policy.name(), "none");
}

TEST(BackoffTest, FixedPolicyDelaysAndBudget) {
  const RetryPolicy policy = RetryPolicy::fixed(/*retries=*/2, /*every=*/4);
  EXPECT_TRUE(policy.should_retry(1));
  EXPECT_TRUE(policy.should_retry(2));
  EXPECT_FALSE(policy.should_retry(3));
  Rng rng(1);
  EXPECT_EQ(policy.delay(1, rng), 4u);
  EXPECT_EQ(policy.delay(2, rng), 4u);  // fixed: no growth, no jitter
}

TEST(BackoffTest, ExponentialJitterStaysInWindow) {
  const RetryPolicy policy =
      RetryPolicy::exponential_jitter(/*retries=*/6, /*base=*/2, /*cap=*/16);
  Rng rng(7);
  for (std::uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const std::uint32_t window =
        std::min<std::uint32_t>(16, 2u << (attempt - 1));
    for (int i = 0; i < 200; ++i) {
      const std::uint32_t d = policy.delay(attempt, rng);
      EXPECT_GE(d, 1u);
      EXPECT_LE(d, window) << "attempt " << attempt;
    }
  }
  // Large attempt numbers saturate at the cap instead of overflowing.
  EXPECT_LE(policy.delay(40, rng), 16u);
}

TEST(BackoffTest, JitterIsDeterministicGivenRng) {
  const RetryPolicy policy = RetryPolicy::exponential_jitter(3);
  Rng a(5), b(5);
  for (std::uint32_t attempt = 1; attempt <= 3; ++attempt) {
    EXPECT_EQ(policy.delay(attempt, a), policy.delay(attempt, b));
  }
}

TEST(BackoffTest, ParseAcceptsKnownSpecs) {
  EXPECT_EQ(RetryPolicy::parse("none").kind, RetryKind::kNone);
  EXPECT_EQ(RetryPolicy::parse("fixed").kind, RetryKind::kFixed);
  EXPECT_EQ(RetryPolicy::parse("exp").kind, RetryKind::kExponentialJitter);
  EXPECT_EQ(RetryPolicy::parse("exponential").kind,
            RetryKind::kExponentialJitter);
  EXPECT_EQ(RetryPolicy::parse("backoff").kind,
            RetryKind::kExponentialJitter);
  try {
    (void)RetryPolicy::parse("sometimes");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("'sometimes'"), std::string::npos);
  }
}

TEST(BackoffTest, AstronomicalAttemptCountsSaturateAtCap) {
  // Regression: the delay computation must cap the doubling *before*
  // computing base·2^(attempt-1); a naive shift would overflow long before
  // attempt counts like these.
  const RetryPolicy policy =
      RetryPolicy::exponential_jitter(/*retries=*/3, /*base=*/3, /*cap=*/500);
  Rng rng(11);
  for (const std::uint32_t attempt :
       {31u, 32u, 33u, 64u, 100000u, 0xffffffffu}) {
    const std::uint32_t d = policy.delay(attempt, rng);
    EXPECT_GE(d, 1u) << "attempt " << attempt;
    EXPECT_LE(d, 500u) << "attempt " << attempt;
  }
  // Once saturated, every attempt draws from the identical [1, cap] window:
  // equal rng states must produce equal delays regardless of the attempt.
  Rng a(99), b(99);
  EXPECT_EQ(policy.delay(50, a), policy.delay(0xffffffffu, b));
}

// ---------------------------------------------------------------- CRC32 ----

TEST(Crc32Test, MatchesKnownAnswerVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("")), 0u);
  EXPECT_EQ(crc32(std::string_view("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalChainingEqualsOneShot) {
  const std::string data = "begin 3\nt 0 17 1 0 0 0 42.5\nend 3\n";
  const std::uint32_t whole = crc32(std::string_view(data));
  std::uint32_t chained = 0;
  for (const char c : data) chained = crc32(&c, 1, chained);
  EXPECT_EQ(chained, whole);
  // Any single-bit flip must change the checksum.
  std::string flipped = data;
  flipped[10] = static_cast<char>(flipped[10] ^ 0x01);
  EXPECT_NE(crc32(std::string_view(flipped)), whole);
}

// ----------------------------------------------------------- atomic file ----

std::string util_temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

TEST(AtomicFileTest, WriteFileAtomicCreatesAndReplaces) {
  const std::string path = util_temp_path("accu_atomic.txt");
  write_file_atomic(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  write_file_atomic(path, "second, longer content\n");
  EXPECT_EQ(slurp(path), "second, longer content\n");
}

TEST(AtomicFileTest, TruncateFileDropsTheTail) {
  const std::string path = util_temp_path("accu_truncate.txt");
  write_file_atomic(path, "keep this|drop this");
  truncate_file(path, 9);
  EXPECT_EQ(slurp(path), "keep this");
}

TEST(AtomicFileTest, FsyncDirFlushesARealDirectory) {
  // The helper behind durable renames/creates: it must succeed on a real
  // directory and report (not throw) failure on a bogus path, since every
  // caller treats directory fsync as best effort.
  EXPECT_TRUE(fsync_dir(testing::TempDir()));
  EXPECT_FALSE(fsync_dir(testing::TempDir() + "no_such_dir_accu"));
}

TEST(AtomicFileTest, FsyncParentDirResolvesTheContainingDirectory) {
  const std::string path = util_temp_path("accu_parent_sync.txt");
  write_file_atomic(path, "x");
  EXPECT_TRUE(fsync_parent_dir(path));
  EXPECT_FALSE(fsync_parent_dir(testing::TempDir() +
                                "no_such_dir_accu/file.txt"));
  // A bare filename's parent is the working directory.
  EXPECT_TRUE(fsync_parent_dir("bare_name_without_slash"));
}

TEST(DurableAppenderTest, CreatingAnAppendFileSyncsItsDirectory) {
  // A journal created by open() must be findable after a power loss: the
  // open fsyncs the parent directory, not just (later) the file bytes.
  const std::string path = util_temp_path("accu_append_create.txt");
  DurableAppender out;
  out.open(path);
  ASSERT_TRUE(out.is_open());
  out.append("record\n");
  out.sync();
  out.close();
  EXPECT_EQ(slurp(path), "record\n");
}

TEST(DurableAppenderTest, AppendsSyncsAndReportsSize) {
  const std::string path = util_temp_path("accu_append.txt");
  DurableAppender out;
  EXPECT_FALSE(out.is_open());
  out.open(path);
  ASSERT_TRUE(out.is_open());
  out.append("one\n");
  out.sync();
  out.append("two\n");
  EXPECT_EQ(out.size(), 8u);
  out.close();
  EXPECT_FALSE(out.is_open());
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  // Re-opening appends after the existing content.
  DurableAppender again;
  again.open(path);
  again.append("three\n");
  again.close();
  EXPECT_EQ(slurp(path), "one\ntwo\nthree\n");
}

// ------------------------------------------------------------- pid lock ----

TEST(PidFileTest, AcquireRecordsPidAndExcludesSecondHolder) {
  const std::string path = util_temp_path("accu_pidfile.lock");
  PidFile first;
  ASSERT_TRUE(first.try_acquire(path));
  EXPECT_TRUE(first.held());
  EXPECT_GT(PidFile::read_pid(path), 0);
  // flock is per open-file-description, so a second holder — even in the
  // same process — is refused while the first lives.
  PidFile second;
  EXPECT_FALSE(second.try_acquire(path));
  first.release();
  EXPECT_FALSE(first.held());
  // A clean release removes the file and frees the lock for successors.
  EXPECT_EQ(PidFile::read_pid(path), 0);
  EXPECT_TRUE(second.try_acquire(path));
  second.release();
}

TEST(PidFileTest, ReadPidOnMissingOrGarbageFileIsZero) {
  const std::string path = util_temp_path("accu_pidfile_garbage.lock");
  EXPECT_EQ(PidFile::read_pid(path), 0);
  write_file_atomic(path, "not a pid\n");
  EXPECT_EQ(PidFile::read_pid(path), 0);
}

// ------------------------------------------------------------ exit codes ----

TEST(ExitCodesTest, ContractValuesAreStable) {
  // Shell scripts (tools/ci.sh) branch on these exact integers.
  EXPECT_EQ(exit_code::kOk, 0);
  EXPECT_EQ(exit_code::kFailure, 1);
  EXPECT_EQ(exit_code::kUsage, 2);
  EXPECT_EQ(exit_code::kMissingCells, 3);
  EXPECT_EQ(exit_code::kQuarantined, 4);
  EXPECT_EQ(exit_code::kAlreadyRunning, 5);
  EXPECT_EQ(exit_code::kInterrupted, 130);
}

// ---------------------------------------------------------- cancellation ----

TEST(CancelTest, CheckPassesUntilCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
  token.cancel(CancelReason::kInterrupt);
  EXPECT_TRUE(token.cancelled());
  try {
    token.check();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kInterrupt);
  }
}

TEST(CancelTest, FirstReasonWins) {
  CancelToken token;
  token.cancel(CancelReason::kDeadline);
  token.cancel(CancelReason::kInterrupt);  // too late: no effect
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancelTest, DeadlineSelfExpiresAndClearRearms) {
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds(0));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  token.clear();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  // A generous deadline does not fire.
  token.set_deadline_after(std::chrono::hours(1));
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace accu::util
