// Robustness edge cases across the stack: degenerate instances (empty,
// single-node, isolated nodes, zero probabilities), zero budgets, and the
// logging/timing utilities.

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "graph/generators.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace accu {
namespace {

AccuInstance empty_instance() {
  return AccuInstance(graph::GraphBuilder(0).build(), {}, {}, {},
                      BenefitModel({}, {}));
}

TEST(EdgeCaseTest, EmptyInstanceSimulates) {
  const AccuInstance instance = empty_instance();
  const Realization truth = Realization::certain(instance);
  AbmStrategy abm(0.5, 0.5);
  util::Rng rng(1);
  const SimulationResult result = simulate(instance, truth, abm, 10, rng);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_DOUBLE_EQ(result.total_benefit, 0.0);
}

TEST(EdgeCaseTest, SingleIsolatedNode) {
  graph::GraphBuilder b(1);
  const AccuInstance instance(b.build(), {UserClass::kReckless}, {1.0}, {1},
                              BenefitModel::uniform(1, 2.0, 1.0));
  const Realization truth = Realization::certain(instance);
  AbmStrategy abm(0.5, 0.5);
  util::Rng rng(2);
  const SimulationResult result = simulate(instance, truth, abm, 5, rng);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_TRUE(result.trace[0].accepted);
  EXPECT_DOUBLE_EQ(result.total_benefit, 2.0);
}

TEST(EdgeCaseTest, ZeroBudgetSendsNothing) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const AccuInstance instance(b.build(), std::vector<UserClass>(3),
                              std::vector<double>(3, 1.0),
                              std::vector<std::uint32_t>(3, 1),
                              BenefitModel::uniform(3, 2.0, 1.0));
  const Realization truth = Realization::certain(instance);
  RandomStrategy random;
  util::Rng rng(3);
  const SimulationResult result = simulate(instance, truth, random, 0, rng);
  EXPECT_TRUE(result.trace.empty());
}

TEST(EdgeCaseTest, AllRejectingPopulation) {
  // q = 0 everywhere: every request bounces, no edges are ever revealed,
  // benefit stays 0, and the budget is still spent (matching the paper's
  // Algorithm 1, which sends exactly k requests).
  graph::GraphBuilder b = [] {
    graph::GraphBuilder builder(6);
    builder.add_edge(0, 1, 0.5);
    builder.add_edge(2, 3, 0.5);
    return builder;
  }();
  const AccuInstance instance(b.build(), std::vector<UserClass>(6),
                              std::vector<double>(6, 0.0),
                              std::vector<std::uint32_t>(6, 1),
                              BenefitModel::uniform(6, 2.0, 1.0));
  util::Rng rng(4);
  const Realization truth = Realization::sample(instance, rng);
  AbmStrategy abm(0.5, 0.5);
  const SimulationResult result = simulate(instance, truth, abm, 4, rng);
  EXPECT_EQ(result.trace.size(), 4u);
  for (const RequestRecord& r : result.trace) EXPECT_FALSE(r.accepted);
  EXPECT_DOUBLE_EQ(result.total_benefit, 0.0);
}

TEST(EdgeCaseTest, ZeroProbabilityEdgesYieldNoFofMass) {
  // All potential edges have p = 0: friends never bring FOFs and ABM's
  // potential reduces to q·B_f.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 2, 0.0);
  const AccuInstance instance(b.build(), std::vector<UserClass>(4),
                              {1.0, 1.0, 1.0, 1.0},
                              std::vector<std::uint32_t>(4, 1),
                              BenefitModel::uniform(4, 2.0, 1.0));
  const AttackerView view(instance);
  EXPECT_DOUBLE_EQ(AbmStrategy::direct_gain(view, 1), 2.0);
  const Realization truth({false, false}, std::vector<bool>(4, true));
  AbmStrategy abm = make_classic_greedy();
  util::Rng rng(5);
  const SimulationResult result = simulate(instance, truth, abm, 4, rng);
  EXPECT_DOUBLE_EQ(result.total_benefit, 8.0);  // 4 friends, 0 FOFs
}

TEST(EdgeCaseTest, IsolatedCautiousUserIsRejectedByValidation) {
  // θ >= 1 but no neighbors at all: the instance must refuse it (the paper
  // removes such users).
  graph::GraphBuilder b(2);
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious};
  EXPECT_THROW(AccuInstance(b.build(), classes, {1.0, 0.0}, {1, 1},
                            BenefitModel::uniform(2, 2.0, 1.0)),
               InvalidArgument);
}

TEST(EdgeCaseTest, BudgetLargerThanPopulation) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const AccuInstance instance(b.build(), std::vector<UserClass>(3),
                              std::vector<double>(3, 1.0),
                              std::vector<std::uint32_t>(3, 1),
                              BenefitModel::uniform(3, 2.0, 1.0));
  const Realization truth = Realization::certain(instance);
  for (auto make : {+[]() -> std::unique_ptr<Strategy> {
                      return std::make_unique<AbmStrategy>(0.5, 0.5);
                    },
                    +[]() -> std::unique_ptr<Strategy> {
                      return std::make_unique<MaxDegreeStrategy>();
                    }}) {
    const auto strategy = make();
    util::Rng rng(6);
    const SimulationResult result =
        simulate(instance, truth, *strategy, 1000, rng);
    EXPECT_EQ(result.trace.size(), 3u) << strategy->name();
  }
}

// ------------------------------------------------------------- util odds ----

TEST(LogTest, LevelGating) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Filtered and unfiltered calls must both be safe to make.
  util::log_debug("dropped %d", 1);
  util::log_error("kept %s", "message");
  util::set_log_level(util::LogLevel::kDebug);
  util::log_debug("now visible %d", 2);
  util::set_log_level(before);
}

TEST(TimerTest, MeasuresForwardTime) {
  util::Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  (void)sink;
  const double first = timer.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(timer.milliseconds(), first * 1e3 * 0.5);
  timer.reset();
  EXPECT_LE(timer.seconds(), first + 1.0);
}

}  // namespace
}  // namespace accu
