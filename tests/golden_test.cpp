// Golden regression tests: exact outputs for fixed seeds.
//
// These pin the end-to-end behaviour of the stack (RNG → generators →
// dataset protocol → realization → policies → simulator) to known-good
// values, so any unintended behavioural change — a reordered RNG draw, a
// tweaked tie-break, a generator edit — fails loudly here even when all
// semantic invariants still hold.  If a change is *intentional*, update
// the constants and say so in the commit.

#include <gtest/gtest.h>

#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

TEST(GoldenTest, RngStream) {
  util::Rng rng(42);
  EXPECT_EQ(rng(), 1546998764402558742ULL);
  EXPECT_EQ(rng(), 6990951692964543102ULL);
  rng.reseed(42);
  EXPECT_EQ(rng(), 1546998764402558742ULL);
}

TEST(GoldenTest, GeneratorShapes) {
  util::Rng rng(2019);
  const Graph ba = graph::barabasi_albert(500, 3, rng).build();
  EXPECT_EQ(ba.num_edges(), 1491u);
  util::Rng rng2(2019);
  const Graph er = graph::erdos_renyi(400, 0.05, rng2).build();
  EXPECT_EQ(er.num_edges(), 3988u);
}

TEST(GoldenTest, DatasetInstance) {
  util::Rng rng(7);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 10;
  const AccuInstance instance =
      datasets::make_dataset("facebook", config, rng);
  EXPECT_EQ(instance.num_nodes(), 202u);
  EXPECT_EQ(instance.graph().num_edges(), 3960u);
  EXPECT_EQ(instance.num_cautious(), 10u);
  ASSERT_FALSE(instance.cautious_users().empty());
  EXPECT_EQ(instance.cautious_users().front(), 50u);
}

TEST(GoldenTest, AbmAttackOutcome) {
  util::Rng rng(7);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 10;
  const AccuInstance instance =
      datasets::make_dataset("facebook", config, rng);
  util::Rng trng(13);
  const Realization truth = Realization::sample(instance, trng);
  AbmStrategy abm(0.5, 0.5);
  util::Rng srng(1);
  const SimulationResult result = simulate(instance, truth, abm, 40, srng);
  // Exact values pinned 2026-07-04 with the v1 potential function.
  EXPECT_EQ(result.trace.size(), 40u);
  EXPECT_EQ(result.trace[0].target, 36u);
  EXPECT_NEAR(result.total_benefit, 218.0, 1e-9);
  EXPECT_EQ(result.num_accepted, 26u);
  EXPECT_EQ(result.num_cautious_friends, 0u);
}

TEST(GoldenTest, BaselineOrderIsStable) {
  util::Rng rng(7);
  datasets::DatasetConfig config;
  config.scale = 0.05;
  config.num_cautious = 10;
  const AccuInstance instance =
      datasets::make_dataset("facebook", config, rng);
  MaxDegreeStrategy degree;
  util::Rng d1(1);
  degree.reset(instance, d1);
  AttackerView view(instance);
  EXPECT_EQ(degree.select(view, d1), 28u);
  PageRankStrategy pagerank;
  util::Rng p1(1);
  pagerank.reset(instance, p1);
  EXPECT_EQ(pagerank.select(view, p1), 28u);
}

}  // namespace
}  // namespace accu
