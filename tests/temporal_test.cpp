// Tests for the temporal (growing-network) extension: schedules, arrival
// revelation, benefit restricted to arrived users, the wait action, and
// the reduction to the static simulator on an all-at-start schedule.

#include <gtest/gtest.h>

#include "core/strategies/abm.hpp"
#include "core/temporal/temporal.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Path 0-1-2-3 with cautious node 2 (θ=2); benefits 3/1; everyone accepts.
AccuInstance path_instance() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 2, 1},
                      BenefitModel::uniform(4, 3.0, 1.0));
}

TEST(ArrivalScheduleTest, Constructors) {
  const ArrivalSchedule all = ArrivalSchedule::all_at_start(5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(all.arrival_round(v), 0u);

  util::Rng rng(1);
  const ArrivalSchedule uniform =
      ArrivalSchedule::uniform_arrivals(2000, 0.5, 10, rng);
  std::size_t late = 0;
  for (NodeId v = 0; v < 2000; ++v) {
    const std::uint32_t r = uniform.arrival_round(v);
    EXPECT_LE(r, 10u);
    late += r > 0;
  }
  EXPECT_NEAR(static_cast<double>(late) / 2000.0, 0.5, 0.05);
  EXPECT_THROW(ArrivalSchedule::uniform_arrivals(10, 1.5, 5, rng),
               InvalidArgument);
  EXPECT_THROW(ArrivalSchedule::uniform_arrivals(10, 0.5, 0, rng),
               InvalidArgument);
}

TEST(TemporalViewTest, InactiveUsersAreInvisible) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  // Node 0 arrives at round 3; everyone else at 0.
  const ArrivalSchedule schedule(std::vector<std::uint32_t>{3, 0, 0, 0});
  TemporalView view(instance, schedule, truth);
  EXPECT_FALSE(view.is_active(0));
  EXPECT_TRUE(view.is_active(1));
  // Befriending 1 reveals only the active-side edges.
  view.record_acceptance(1);
  EXPECT_EQ(view.edge_state(*instance.graph().find_edge(1, 2)),
            EdgeState::kPresent);
  EXPECT_EQ(view.edge_state(*instance.graph().find_edge(0, 1)),
            EdgeState::kUnknown);
  // Node 0 is not FOF (inactive) and contributes no benefit: friend 1 +
  // FOF 2 only.
  EXPECT_FALSE(view.is_fof(0));
  EXPECT_DOUBLE_EQ(view.current_benefit(), 4.0);
  EXPECT_DOUBLE_EQ(view.recompute_benefit(), 4.0);
  // Belief of an edge with an inactive endpoint is 0.
  EXPECT_DOUBLE_EQ(view.edge_belief(*instance.graph().find_edge(0, 1)), 0.0);
}

TEST(TemporalViewTest, ArrivalRevealsEdgesToFriends) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  const ArrivalSchedule schedule(std::vector<std::uint32_t>{3, 0, 0, 0});
  TemporalView view(instance, schedule, truth);
  view.record_acceptance(1);
  const double before = view.current_benefit();
  view.advance_to(3);  // node 0 arrives: edge (0,1) to friend 1 revealed
  EXPECT_TRUE(view.is_active(0));
  EXPECT_EQ(view.edge_state(*instance.graph().find_edge(0, 1)),
            EdgeState::kPresent);
  EXPECT_TRUE(view.is_fof(0));
  EXPECT_DOUBLE_EQ(view.current_benefit(), before + 1.0);
  EXPECT_DOUBLE_EQ(view.recompute_benefit(), view.current_benefit());
  EXPECT_TRUE(view.all_arrived());
}

TEST(TemporalViewTest, MutualCountsGateCautiousAcceptance) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  // Node 3 arrives late: the cautious user 2 cannot reach θ=2 before then.
  const ArrivalSchedule schedule(std::vector<std::uint32_t>{0, 0, 0, 5});
  TemporalView view(instance, schedule, truth);
  view.record_acceptance(1);
  EXPECT_EQ(view.mutual_friends(2), 1u);
  EXPECT_FALSE(view.cautious_would_accept(2));
  view.advance_to(5);
  view.record_acceptance(3);
  EXPECT_EQ(view.mutual_friends(2), 2u);
  EXPECT_TRUE(view.cautious_would_accept(2));
}

TEST(TemporalSimulatorTest, StaticScheduleMatchesStaticAbm) {
  util::Rng rng(7);
  graph::GraphBuilder b = graph::barabasi_albert(60, 3, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(60, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(60, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 6; v < 60 && cautious.size() < 5; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(60);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::paper_default(classes));
  const Realization truth = Realization::sample(instance, rng);

  // Static run.
  AbmStrategy abm(0.5, 0.5);
  util::Rng rs(1);
  const SimulationResult static_result =
      simulate(instance, truth, abm, 25, rs);
  // Temporal run with everyone present from round 0.
  TemporalAbm temporal({0.5, 0.5});
  util::Rng rt(1);
  const TemporalResult temporal_result = simulate_temporal(
      instance, ArrivalSchedule::all_at_start(60), truth, temporal, 25, 25,
      rt);
  ASSERT_EQ(temporal_result.trace.size(), static_result.trace.size());
  for (std::size_t i = 0; i < static_result.trace.size(); ++i) {
    EXPECT_EQ(temporal_result.trace[i].target,
              static_result.trace[i].target)
        << "round " << i;
    EXPECT_EQ(temporal_result.trace[i].accepted,
              static_result.trace[i].accepted);
  }
  EXPECT_DOUBLE_EQ(temporal_result.total_benefit,
                   static_result.total_benefit);
}

TEST(TemporalSimulatorTest, WaitsWhenNothingUsefulIsActive) {
  // Only a q=0 user is active at the start; the valuable users arrive at
  // round 2 — TemporalABM must wait, not burn budget.
  graph::GraphBuilder b(3);
  b.add_edge(1, 2);
  const AccuInstance instance(b.build(), std::vector<UserClass>(3),
                              {0.0, 1.0, 1.0},
                              std::vector<std::uint32_t>(3, 1),
                              BenefitModel::uniform(3, 2.0, 1.0));
  const Realization truth = Realization::certain(instance);
  const ArrivalSchedule schedule(std::vector<std::uint32_t>{0, 2, 2});
  TemporalAbm strategy({1.0, 0.0});
  util::Rng rng(2);
  const TemporalResult result = simulate_temporal(
      instance, schedule, truth, strategy, 6, 2, rng);
  ASSERT_GE(result.trace.size(), 3u);
  EXPECT_EQ(result.trace[0].target, kInvalidNode);  // waited
  EXPECT_EQ(result.trace[1].target, kInvalidNode);  // waited
  EXPECT_NE(result.trace[2].target, kInvalidNode);  // arrivals landed
  EXPECT_EQ(result.requests_sent, 2u);
  EXPECT_DOUBLE_EQ(result.total_benefit, 4.0);  // both friends
}

TEST(TemporalSimulatorTest, BudgetAndRoundsBothBind) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  const ArrivalSchedule schedule = ArrivalSchedule::all_at_start(4);
  {
    TemporalAbm strategy({0.5, 0.5});
    util::Rng rng(3);
    const TemporalResult result = simulate_temporal(
        instance, schedule, truth, strategy, 10, 2, rng);
    EXPECT_EQ(result.requests_sent, 2u);  // budget binds
  }
  {
    TemporalAbm strategy({0.5, 0.5});
    util::Rng rng(4);
    const TemporalResult result = simulate_temporal(
        instance, schedule, truth, strategy, 3, 10, rng);
    EXPECT_EQ(result.requests_sent, 3u);  // rounds bind
  }
}

TEST(TemporalAbmTest, PotentialMatchesStaticFormulasWhenAllActive) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  TemporalView view(instance, ArrivalSchedule::all_at_start(4), truth);
  const TemporalAbm abm({0.5, 0.5});
  // Hand values mirror the static ABM on the same state: node 1 has
  // P_D = 3 + 1 + 1 = 5 and P_I = (3−1)/2 = 1 via cautious neighbor 2.
  EXPECT_DOUBLE_EQ(abm.potential(view, 1), 1.0 * (0.5 * 5.0 + 0.5 * 1.0));
  EXPECT_DOUBLE_EQ(abm.potential(view, 2), 0.0);  // below threshold
  EXPECT_DOUBLE_EQ(abm.potential(view, 0), 0.5 * (3.0 + 1.0));
}

TEST(TemporalAbmTest, InactiveNeighborsCarryNoPotentialMass) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  // Node 2 (the cautious neighbor of 1) arrives late.
  const ArrivalSchedule schedule(std::vector<std::uint32_t>{0, 0, 9, 0});
  TemporalView view(instance, schedule, truth);
  const TemporalAbm abm({0.5, 0.5});
  // Node 1's potential loses both the B_fof(2) mass and the indirect term.
  EXPECT_DOUBLE_EQ(abm.potential(view, 1), 1.0 * (0.5 * 4.0 + 0.5 * 0.0));
  view.advance_to(9);
  EXPECT_DOUBLE_EQ(abm.potential(view, 1), 1.0 * (0.5 * 5.0 + 0.5 * 1.0));
}

class TemporalPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TemporalPropertyTest, BenefitBookkeepingMatchesRecompute) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(40, 0.12, rng);
  b.assign_uniform_probs(rng);
  const AccuInstance instance(b.build(), std::vector<UserClass>(40),
                              std::vector<double>(40, 0.7),
                              std::vector<std::uint32_t>(40, 1),
                              BenefitModel::uniform(40, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);
  const ArrivalSchedule schedule =
      ArrivalSchedule::uniform_arrivals(40, 0.5, 20, rng);
  TemporalView view(instance, schedule, truth);
  for (std::uint32_t round = 0; round < 25; ++round) {
    view.advance_to(round);
    // Request a random active, un-requested node (if any).
    for (NodeId v = 0; v < 40; ++v) {
      if (!view.is_active(v) || view.is_requested(v)) continue;
      if (rng.bernoulli(0.5)) {
        if (truth.reckless_accepts(v)) {
          view.record_acceptance(v);
        } else {
          view.record_rejection(v);
        }
        break;
      }
    }
    ASSERT_NEAR(view.current_benefit(), view.recompute_benefit(), 1e-9)
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalPropertyTest,
                         testing::Values(301u, 302u, 303u, 304u, 305u));

}  // namespace
}  // namespace accu
