// Tests for AttackerView — the partial-realization bookkeeping the whole
// simulation relies on: state machine, edge revelation, FOF and mutual
// counters, incremental benefit, plus randomized property checks against
// brute-force recomputation.

#include <gtest/gtest.h>

#include <numeric>

#include "core/observation.hpp"
#include "core/theory/exact.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

/// Instance on 5 nodes: square 0-1-2-3 with chord (1,3) and pendant 4 on
/// node 3.  Node 2 is cautious with θ = 2.
AccuInstance square_instance(double edge_prob = 1.0) {
  graph::GraphBuilder b(5);
  b.add_edge(0, 1, edge_prob);
  b.add_edge(1, 2, edge_prob);
  b.add_edge(2, 3, edge_prob);
  b.add_edge(0, 3, edge_prob);
  b.add_edge(1, 3, edge_prob);
  b.add_edge(3, 4, edge_prob);
  std::vector<UserClass> classes(5, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {0.5, 0.5, 0.0, 0.5, 0.5},
                      {1, 1, 2, 1, 1}, BenefitModel::uniform(5, 3.0, 1.0));
}

TEST(AttackerViewTest, InitialStateIsAllUnknown) {
  const AccuInstance instance = square_instance();
  const AttackerView view(instance);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(view.request_state(v), RequestState::kUnknown);
    EXPECT_FALSE(view.is_friend(v));
    EXPECT_FALSE(view.is_fof(v));
    EXPECT_EQ(view.mutual_friends(v), 0u);
  }
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    EXPECT_EQ(view.edge_state(e), EdgeState::kUnknown);
  }
  EXPECT_DOUBLE_EQ(view.current_benefit(), 0.0);
  EXPECT_EQ(view.num_requests(), 0u);
}

TEST(AttackerViewTest, RejectionRevealsNothing) {
  const AccuInstance instance = square_instance();
  AttackerView view(instance);
  view.record_rejection(1);
  EXPECT_EQ(view.request_state(1), RequestState::kRejected);
  EXPECT_EQ(view.num_requests(), 1u);
  for (EdgeId e = 0; e < instance.graph().num_edges(); ++e) {
    EXPECT_EQ(view.edge_state(e), EdgeState::kUnknown);
  }
  EXPECT_DOUBLE_EQ(view.current_benefit(), 0.0);
}

TEST(AttackerViewTest, AcceptanceRevealsIncidentEdges) {
  const AccuInstance instance = square_instance();
  // Edge (1,3) absent in truth; everything else present.
  std::vector<bool> edges(6, true);
  const auto e13 = instance.graph().find_edge(1, 3);
  ASSERT_TRUE(e13.has_value());
  edges[*e13] = false;
  const Realization truth(edges, std::vector<bool>(5, true));

  AttackerView view(instance);
  const auto effects = view.record_acceptance(1, truth);
  EXPECT_FALSE(effects.was_fof);
  EXPECT_TRUE(view.is_friend(1));
  // Edges (0,1), (1,2) revealed present; (1,3) revealed absent.
  EXPECT_EQ(view.edge_state(*instance.graph().find_edge(0, 1)),
            EdgeState::kPresent);
  EXPECT_EQ(view.edge_state(*e13), EdgeState::kAbsent);
  // Non-incident edges remain unknown.
  EXPECT_EQ(view.edge_state(*instance.graph().find_edge(2, 3)),
            EdgeState::kUnknown);
  // 0 and 2 became FOF; 3 did not (its only link to 1 is absent).
  EXPECT_TRUE(view.is_fof(0));
  EXPECT_TRUE(view.is_fof(2));
  EXPECT_FALSE(view.is_fof(3));
  EXPECT_EQ(effects.new_fof.size(), 2u);
  // Benefit: B_f(1) + B_fof(0) + B_fof(2) = 3 + 1 + 1.
  EXPECT_DOUBLE_EQ(view.current_benefit(), 5.0);
}

TEST(AttackerViewTest, EdgeBeliefTransitions) {
  const AccuInstance instance = square_instance(0.4);
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  const EdgeId e01 = *instance.graph().find_edge(0, 1);
  EXPECT_DOUBLE_EQ(view.edge_belief(e01), 0.4);
  view.record_acceptance(0, truth);
  EXPECT_DOUBLE_EQ(view.edge_belief(e01), 1.0);
}

TEST(AttackerViewTest, FriendUpgradeSubtractsFofBenefit) {
  const AccuInstance instance = square_instance();
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  view.record_acceptance(0, truth);
  // 1 and 3 are FOF now.
  EXPECT_TRUE(view.is_fof(1));
  const double before = view.current_benefit();
  const auto effects = view.record_acceptance(1, truth);
  EXPECT_TRUE(effects.was_fof);
  // Marginal: B_f(1) − B_fof(1) + B_fof(2) = 3 − 1 + 1 = 3.
  EXPECT_DOUBLE_EQ(view.current_benefit() - before, 3.0);
  EXPECT_FALSE(view.is_fof(1));  // friends are not FOF
}

TEST(AttackerViewTest, MutualFriendCounting) {
  const AccuInstance instance = square_instance();
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  view.record_acceptance(1, truth);
  EXPECT_EQ(view.mutual_friends(2), 1u);  // via friend 1
  EXPECT_FALSE(view.cautious_would_accept(2));  // θ = 2
  view.record_acceptance(3, truth);
  EXPECT_EQ(view.mutual_friends(2), 2u);
  EXPECT_TRUE(view.cautious_would_accept(2));
  // Friends also carry counts (3 is adjacent to friend 1).
  EXPECT_EQ(view.mutual_friends(4), 1u);
}

TEST(AttackerViewTest, CautiousFriendCounter) {
  const AccuInstance instance = square_instance();
  const Realization truth = Realization::certain(instance);
  AttackerView view(instance);
  view.record_acceptance(1, truth);
  view.record_acceptance(3, truth);
  EXPECT_EQ(view.num_cautious_friends(), 0u);
  view.record_acceptance(2, truth);
  EXPECT_EQ(view.num_cautious_friends(), 1u);
}

TEST(AttackerViewTest, ConsistentWithFiltersWorlds) {
  const AccuInstance instance = square_instance(0.5);
  const auto worlds = enumerate_realizations(instance);
  AttackerView view(instance);
  // Before any observation every world is consistent.
  std::size_t consistent = 0;
  for (const auto& [truth, prob] : worlds) {
    (void)prob;
    consistent += consistent_with(view, truth);
  }
  EXPECT_EQ(consistent, worlds.size());

  // Accept node 0 under a specific world; afterwards only worlds agreeing
  // on 0's coin and 0's two incident edges remain.
  const Realization chosen(std::vector<bool>{true, false, true, false, true,
                                             true},
                           std::vector<bool>(5, true));
  view.record_acceptance(0, chosen);
  double mass = 0.0;
  consistent = 0;
  for (const auto& [truth, prob] : worlds) {
    if (consistent_with(view, truth)) {
      ++consistent;
      mass += prob;
    }
  }
  // 2 incident edges fixed (of 6 free) and 1 coin fixed (of 5 free):
  // 2^9 / 2^3 … relative count = 2^6·... just verify the exact fraction:
  // edges: 2 of 6 pinned ⇒ ×(1/4); coins: 1 of 5 pinned ⇒ ×(1/2).
  EXPECT_EQ(consistent, worlds.size() / 8);
  EXPECT_NEAR(mass, 0.5 * 0.5 * 0.5, 1e-12);
}

// Property: across random instances and random acceptance sequences the
// incremental benefit always equals the brute-force Eq.-(1) recomputation,
// and mutual counts match a direct scan.
class ViewPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewPropertyTest, IncrementalMatchesBruteForce) {
  util::Rng rng(GetParam());
  graph::GraphBuilder b = graph::erdos_renyi(40, 0.12, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(40, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(40, 1);
  // Make a few well-connected nodes cautious (no two adjacent).
  std::vector<NodeId> cautious;
  for (NodeId v = 0; v < 40 && cautious.size() < 4; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(40);
  for (auto& x : q) x = rng.uniform();
  const AccuInstance instance(g, classes, q, thresholds,
                              BenefitModel::uniform(40, 2.0, 1.0));
  const Realization truth = Realization::sample(instance, rng);

  AttackerView view(instance);
  std::vector<NodeId> order(40);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  for (std::size_t i = 0; i < 20; ++i) {
    const NodeId v = order[i];
    if (rng.bernoulli(0.6)) {
      view.record_acceptance(v, truth);
    } else {
      view.record_rejection(v);
    }
    ASSERT_NEAR(view.current_benefit(), view.recompute_benefit(), 1e-9);
    // Mutual counts against a direct scan of realized friend edges.
    for (NodeId w = 0; w < 40; ++w) {
      std::uint32_t expected = 0;
      for (const graph::Neighbor& nb : g.neighbors(w)) {
        if (truth.edge_present(nb.edge) && view.is_friend(nb.node)) {
          ++expected;
        }
      }
      ASSERT_EQ(view.mutual_friends(w), expected) << "node " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewPropertyTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace accu
