// Tests for the structural network metrics (graph/metrics.hpp).

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace accu::graph {
namespace {

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph star(NodeId leaves) {
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

TEST(DegreeDistributionTest, CountsPerDegree) {
  const auto counts = degree_distribution(path(5));
  // Path of 5: two endpoints (deg 1), three inner (deg 2).
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(DegreeDistributionTest, SumsToNodeCount) {
  util::Rng rng(1);
  const Graph g = barabasi_albert(300, 3, rng).build();
  const auto counts = degree_distribution(g);
  const auto total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, 300u);
}

TEST(DegreeCcdfTest, MonotoneFromOneToZero) {
  util::Rng rng(2);
  const Graph g = barabasi_albert(300, 3, rng).build();
  const auto ccdf = degree_ccdf(g);
  EXPECT_DOUBLE_EQ(ccdf.front(), 1.0);
  EXPECT_DOUBLE_EQ(ccdf.back(), 0.0);
  for (std::size_t d = 1; d < ccdf.size(); ++d) {
    EXPECT_LE(ccdf[d], ccdf[d - 1] + 1e-12);
  }
  // CCDF at the minimum degree (3 for BA) is still 1.
  EXPECT_DOUBLE_EQ(ccdf[3], 1.0);
}

TEST(AssortativityTest, StarIsMaximallyDisassortative) {
  EXPECT_NEAR(degree_assortativity(star(8)), -1.0, 1e-9);
}

TEST(AssortativityTest, RegularGraphReportsZero) {
  // Cycle: all degrees equal — correlation undefined, reported as 0.
  GraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) b.add_edge(v, (v + 1) % 6);
  EXPECT_DOUBLE_EQ(degree_assortativity(b.build()), 0.0);
}

TEST(AssortativityTest, WithinValidRangeOnRandomGraphs) {
  util::Rng rng(3);
  const Graph g = powerlaw_configuration(600, 2.5, 2, 60, rng).build();
  const double r = degree_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  // BA/configuration graphs are famously non-assortative-to-disassortative.
  EXPECT_LT(r, 0.3);
}

TEST(DiameterTest, ExactOnPath) {
  util::Rng rng(4);
  EXPECT_EQ(diameter_lower_bound(path(10), 3, rng), 9u);
}

TEST(DiameterTest, StarIsTwo) {
  util::Rng rng(5);
  EXPECT_EQ(diameter_lower_bound(star(7), 3, rng), 2u);
}

TEST(DiameterTest, SmallWorldIsSmall) {
  util::Rng rng(6);
  const Graph g = holme_kim(2000, 5, 0.3, rng).build();
  util::Rng sweep_rng(7);
  const std::uint32_t d = diameter_lower_bound(g, 4, sweep_rng);
  EXPECT_GE(d, 3u);
  EXPECT_LE(d, 12u);  // O(log n) in scale-free networks
}

TEST(ComponentSizesTest, SortedDescending) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5, 6 isolated.
  const auto sizes = component_sizes(b.build());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 2, 1, 1}));
}

TEST(ComponentSizesTest, EmptyGraph) {
  EXPECT_TRUE(component_sizes(Graph{}).empty());
}

}  // namespace
}  // namespace accu::graph
