// Tests for the structural network metrics (graph/metrics.hpp).

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace accu::graph {
namespace {

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph star(NodeId leaves) {
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

TEST(DegreeDistributionTest, CountsPerDegree) {
  const auto counts = degree_distribution(path(5));
  // Path of 5: two endpoints (deg 1), three inner (deg 2).
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(DegreeDistributionTest, SumsToNodeCount) {
  util::Rng rng(1);
  const Graph g = barabasi_albert(300, 3, rng).build();
  const auto counts = degree_distribution(g);
  const auto total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, 300u);
}

TEST(DegreeCcdfTest, MonotoneFromOneToZero) {
  util::Rng rng(2);
  const Graph g = barabasi_albert(300, 3, rng).build();
  const auto ccdf = degree_ccdf(g);
  EXPECT_DOUBLE_EQ(ccdf.front(), 1.0);
  EXPECT_DOUBLE_EQ(ccdf.back(), 0.0);
  for (std::size_t d = 1; d < ccdf.size(); ++d) {
    EXPECT_LE(ccdf[d], ccdf[d - 1] + 1e-12);
  }
  // CCDF at the minimum degree (3 for BA) is still 1.
  EXPECT_DOUBLE_EQ(ccdf[3], 1.0);
}

TEST(AssortativityTest, StarIsMaximallyDisassortative) {
  EXPECT_NEAR(degree_assortativity(star(8)), -1.0, 1e-9);
}

TEST(AssortativityTest, RegularGraphReportsZero) {
  // Cycle: all degrees equal — correlation undefined, reported as 0.
  GraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) b.add_edge(v, (v + 1) % 6);
  EXPECT_DOUBLE_EQ(degree_assortativity(b.build()), 0.0);
}

TEST(AssortativityTest, WithinValidRangeOnRandomGraphs) {
  util::Rng rng(3);
  const Graph g = powerlaw_configuration(600, 2.5, 2, 60, rng).build();
  const double r = degree_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  // BA/configuration graphs are famously non-assortative-to-disassortative.
  EXPECT_LT(r, 0.3);
}

TEST(DiameterTest, ExactOnPath) {
  util::Rng rng(4);
  EXPECT_EQ(diameter_lower_bound(path(10), 3, rng), 9u);
}

TEST(DiameterTest, StarIsTwo) {
  util::Rng rng(5);
  EXPECT_EQ(diameter_lower_bound(star(7), 3, rng), 2u);
}

TEST(DiameterTest, SmallWorldIsSmall) {
  util::Rng rng(6);
  const Graph g = holme_kim(2000, 5, 0.3, rng).build();
  util::Rng sweep_rng(7);
  const std::uint32_t d = diameter_lower_bound(g, 4, sweep_rng);
  EXPECT_GE(d, 3u);
  EXPECT_LE(d, 12u);  // O(log n) in scale-free networks
}

TEST(ComponentSizesTest, SortedDescending) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  // 5, 6 isolated.
  const auto sizes = component_sizes(b.build());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 2, 1, 1}));
}

TEST(ComponentSizesTest, EmptyGraph) {
  EXPECT_TRUE(component_sizes(Graph{}).empty());
}

}  // namespace
}  // namespace accu::graph

// ------------------------------------------------------------------------
// TraceAggregator index-alignment regression: a rate-limit suspension adds
// explicit zero-marginal records *inside* the trace (core/simulator.hpp),
// so stalled rounds contribute a real zero sample at their index instead
// of silently shifting later requests leftward.
// ------------------------------------------------------------------------

#include "core/experiment.hpp"

namespace accu {
namespace {

RequestRecord plain_record(NodeId target, double before, double after) {
  RequestRecord r;
  r.target = target;
  r.accepted = after > before;
  r.benefit_before = before;
  r.benefit_after = after;
  return r;
}

RequestRecord stall_record(double benefit) {
  RequestRecord r;  // target stays kInvalidNode
  r.fault = FaultKind::kSuspensionStall;
  r.benefit_before = benefit;
  r.benefit_after = benefit;
  return r;
}

TEST(TraceAggregatorStallTest, StallRoundsKeepMarginalSeriesAligned) {
  // Run A: accept (+4), two stall rounds, accept (+6).
  // Run B: four plain accepts of +1 each.
  SimulationResult a;
  a.trace = {plain_record(0, 0, 4), stall_record(4), stall_record(4),
             plain_record(1, 4, 10)};
  a.total_benefit = 10;
  a.rounds_suspended = 2;
  SimulationResult b;
  b.trace = {plain_record(0, 0, 1), plain_record(1, 1, 2),
             plain_record(2, 2, 3), plain_record(3, 3, 4)};
  b.total_benefit = 4;

  TraceAggregator agg;
  agg.add(a, 4);
  agg.add(b, 4);

  // Every index holds exactly one sample per run — the stalled rounds are
  // explicit zeros, not skipped indices.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(agg.marginal().at(i).count(), 2u) << "index " << i;
  }
  EXPECT_DOUBLE_EQ(agg.marginal().at(0).mean(), 2.5);  // (4+1)/2
  EXPECT_DOUBLE_EQ(agg.marginal().at(1).mean(), 0.5);  // (0+1)/2: stall is 0
  EXPECT_DOUBLE_EQ(agg.marginal().at(2).mean(), 0.5);
  EXPECT_DOUBLE_EQ(agg.marginal().at(3).mean(), 3.5);  // (6+1)/2
  // The cumulative curve holds flat through the suspension.
  EXPECT_DOUBLE_EQ(agg.cumulative_benefit().at(1).mean(), 3.0);  // (4+2)/2
  EXPECT_DOUBLE_EQ(agg.cumulative_benefit().at(2).mean(), 3.5);  // (4+3)/2
  // Robustness totals flow through.
  EXPECT_DOUBLE_EQ(agg.suspended_rounds().mean(), 1.0);  // (2+0)/2
}

TEST(TraceAggregatorStallTest, StallRecordsCountAsRecklessZero) {
  SimulationResult run;
  run.trace = {stall_record(0), plain_record(0, 0, 2)};
  TraceAggregator agg;
  agg.add(run, 2);
  EXPECT_DOUBLE_EQ(agg.cautious_fraction().at(0).mean(), 0.0);
  EXPECT_DOUBLE_EQ(agg.marginal_cautious().at(0).mean(), 0.0);
  EXPECT_DOUBLE_EQ(agg.marginal_reckless().at(0).mean(), 0.0);
  EXPECT_EQ(agg.marginal_reckless().at(1).count(), 1u);
}

}  // namespace
}  // namespace accu
