// Parameterized property suite run over EVERY policy in the library: the
// invariants any legal adaptive strategy must satisfy under the simulator
// (budget, distinct targets, benefit monotonicity, exhaustion, per-seed
// determinism) — so new strategies are covered by construction.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/lookahead.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

struct StrategyCase {
  const char* label;
  std::function<std::unique_ptr<Strategy>()> make;
};

AccuInstance shared_instance() {
  util::Rng rng(777);
  graph::GraphBuilder b = graph::holme_kim(70, 4, 0.4, rng);
  b.assign_uniform_probs(rng);
  const Graph g = b.build();
  std::vector<UserClass> classes(70, UserClass::kReckless);
  std::vector<std::uint32_t> thresholds(70, 1);
  std::vector<NodeId> cautious;
  for (NodeId v = 8; v < 70 && cautious.size() < 6; ++v) {
    if (g.degree(v) < 3) continue;
    bool adjacent = false;
    for (const NodeId c : cautious) adjacent |= g.has_edge(v, c);
    if (adjacent) continue;
    classes[v] = UserClass::kCautious;
    thresholds[v] = 2;
    cautious.push_back(v);
  }
  std::vector<double> q(70);
  for (auto& x : q) x = rng.uniform();
  return AccuInstance(g, classes, q, thresholds,
                      BenefitModel::paper_default(classes));
}

class StrategyPropertyTest : public testing::TestWithParam<StrategyCase> {
 protected:
  static const AccuInstance& instance() {
    static const AccuInstance cached = shared_instance();
    return cached;
  }
};

TEST_P(StrategyPropertyTest, RespectsBudgetAndDistinctTargets) {
  util::Rng rng(1);
  const Realization truth = Realization::sample(instance(), rng);
  const auto strategy = GetParam().make();
  util::Rng srng(2);
  const SimulationResult result =
      simulate(instance(), truth, *strategy, 30, srng);
  EXPECT_LE(result.trace.size(), 30u);
  std::set<NodeId> seen;
  for (const RequestRecord& r : result.trace) {
    EXPECT_TRUE(seen.insert(r.target).second)
        << "duplicate target " << r.target;
    EXPECT_LT(r.target, instance().num_nodes());
  }
}

TEST_P(StrategyPropertyTest, BenefitIsMonotoneAlongTheTrace) {
  util::Rng rng(3);
  const Realization truth = Realization::sample(instance(), rng);
  const auto strategy = GetParam().make();
  util::Rng srng(4);
  const SimulationResult result =
      simulate(instance(), truth, *strategy, 40, srng);
  double previous = 0.0;
  for (const RequestRecord& r : result.trace) {
    EXPECT_DOUBLE_EQ(r.benefit_before, previous);
    EXPECT_GE(r.benefit_after, r.benefit_before);
    previous = r.benefit_after;
  }
  EXPECT_DOUBLE_EQ(previous, result.total_benefit);
}

TEST_P(StrategyPropertyTest, ExhaustsAllCandidatesUnderHugeBudget) {
  util::Rng rng(5);
  const Realization truth = Realization::sample(instance(), rng);
  const auto strategy = GetParam().make();
  util::Rng srng(6);
  const SimulationResult result =
      simulate(instance(), truth, *strategy, 10000, srng);
  // Every policy in the roster keeps requesting while candidates remain.
  EXPECT_EQ(result.trace.size(), instance().num_nodes());
}

TEST_P(StrategyPropertyTest, DeterministicGivenSeeds) {
  util::Rng rng(7);
  const Realization truth = Realization::sample(instance(), rng);
  const auto a = GetParam().make();
  const auto b = GetParam().make();
  util::Rng ra(8), rb(8);
  const SimulationResult result_a =
      simulate(instance(), truth, *a, 25, ra);
  const SimulationResult result_b =
      simulate(instance(), truth, *b, 25, rb);
  ASSERT_EQ(result_a.trace.size(), result_b.trace.size());
  for (std::size_t i = 0; i < result_a.trace.size(); ++i) {
    EXPECT_EQ(result_a.trace[i].target, result_b.trace[i].target);
  }
}

TEST_P(StrategyPropertyTest, FreshInstancePerSimulationIsReusable) {
  // Strategies are stateful across one simulation but must fully reset.
  util::Rng rng(9);
  const Realization truth = Realization::sample(instance(), rng);
  const auto strategy = GetParam().make();
  util::Rng r1(10), r2(10);
  const SimulationResult first =
      simulate(instance(), truth, *strategy, 15, r1);
  const SimulationResult second =
      simulate(instance(), truth, *strategy, 15, r2);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (std::size_t i = 0; i < first.trace.size(); ++i) {
    EXPECT_EQ(first.trace[i].target, second.trace[i].target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyPropertyTest,
    testing::Values(
        StrategyCase{"abm",
                     [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
        StrategyCase{"abm_reference",
                     [] {
                       AbmStrategy::Config config;
                       config.weights = {0.5, 0.5};
                       config.incremental = false;
                       return std::make_unique<AbmStrategy>(config);
                     }},
        StrategyCase{"greedy",
                     [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
        StrategyCase{"maxdegree",
                     [] { return std::make_unique<MaxDegreeStrategy>(); }},
        StrategyCase{"pagerank",
                     [] { return std::make_unique<PageRankStrategy>(); }},
        StrategyCase{"random",
                     [] { return std::make_unique<RandomStrategy>(); }},
        StrategyCase{"batched5",
                     [] {
                       return std::make_unique<BatchedAbmStrategy>(
                           PotentialWeights{0.5, 0.5}, 5);
                     }},
        StrategyCase{"batched40",
                     [] {
                       return std::make_unique<BatchedAbmStrategy>(
                           PotentialWeights{0.5, 0.5}, 40);
                     }},
        StrategyCase{"lookahead",
                     [] {
                       LookaheadStrategy::Config config;
                       config.beam = 4;
                       config.scenario_samples = 2;
                       return std::make_unique<LookaheadStrategy>(config);
                     }}),
    [](const testing::TestParamInfo<StrategyCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace accu
