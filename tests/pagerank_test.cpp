// Tests for weighted PageRank: stochasticity, known closed-form cases,
// weighting behaviour, dangling nodes and convergence.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "graph/pagerank.hpp"

namespace accu::graph {
namespace {

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(pagerank(Graph{}).empty());
}

TEST(PageRankTest, SumsToOne) {
  util::Rng rng(1);
  const Graph g = erdos_renyi(200, 0.05, rng).build();
  const auto pr = pagerank(g);
  EXPECT_NEAR(sum_of(pr), 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  GraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) b.add_edge(v, (v + 1) % 6);
  const auto pr = pagerank(b.build());
  for (const double r : pr) EXPECT_NEAR(r, 1.0 / 6.0, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  GraphBuilder b(9);
  for (NodeId v = 1; v < 9; ++v) b.add_edge(0, v);
  const auto pr = pagerank(b.build());
  for (NodeId v = 1; v < 9; ++v) {
    EXPECT_GT(pr[0], 3.0 * pr[v]);
    EXPECT_NEAR(pr[v], pr[1], 1e-12);  // leaves are symmetric
  }
}

TEST(PageRankTest, IsolatedNodesAreDangling) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto pr = pagerank(b.build());
  EXPECT_NEAR(sum_of(pr), 1.0, 1e-9);
  EXPECT_GT(pr[0], pr[2]);
  EXPECT_NEAR(pr[2], pr[3], 1e-12);
  EXPECT_GT(pr[2], 0.0);
}

TEST(PageRankTest, WeightsShiftMass) {
  // Path 0-1-2 where edge (1,2) has tiny probability: node 0 should hold
  // more rank than node 2 under weighted PageRank, equal under unweighted.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 0.05);
  const Graph g = b.build();
  const auto weighted = pagerank(g);
  EXPECT_GT(weighted[0], weighted[2]);
  PageRankOptions unweighted;
  unweighted.weighted = false;
  const auto flat = pagerank(g, unweighted);
  EXPECT_NEAR(flat[0], flat[2], 1e-9);
}

TEST(PageRankTest, UniformWeightsMatchUnweighted) {
  util::Rng rng(2);
  GraphBuilder b = erdos_renyi(100, 0.08, rng);
  for (std::size_t i = 0; i < b.num_edges(); ++i) b.set_prob(i, 0.37);
  const Graph g = b.build();
  const auto weighted = pagerank(g);
  PageRankOptions opt;
  opt.weighted = false;
  const auto flat = pagerank(g, opt);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(weighted[v], flat[v], 1e-9);
  }
}

TEST(PageRankTest, ConvergesEarlyWithTightTolerance) {
  util::Rng rng(3);
  const Graph g = barabasi_albert(300, 3, rng).build();
  PageRankOptions few;
  few.max_iterations = 200;
  few.tolerance = 1e-14;
  const auto a = pagerank(g, few);
  PageRankOptions more = few;
  more.max_iterations = 400;
  const auto b = pagerank(g, more);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_NEAR(a[v], b[v], 1e-10);
}

TEST(PageRankTest, DampingZeroIsUniform) {
  util::Rng rng(4);
  const Graph g = barabasi_albert(50, 2, rng).build();
  PageRankOptions opt;
  opt.damping = 0.0;
  const auto pr = pagerank(g, opt);
  for (const double r : pr) EXPECT_NEAR(r, 1.0 / 50.0, 1e-12);
}

}  // namespace
}  // namespace accu::graph
