// Tests for the unreliable-platform layer: FaultConfig validation, the
// FaultModel stream, fault handling in simulate_with_faults (abandonment,
// suspension accounting, retry bookkeeping), the RetryingStrategy
// decorator, and the golden determinism guarantees — zero faults is
// byte-identical to the pristine simulator, and faulted sweeps reproduce
// exactly across repeat runs and across thread counts.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/retrying.hpp"
#include "datasets/datasets.hpp"
#include "graph/generators.hpp"

namespace accu {
namespace {

AccuInstance tiny_instance(std::uint64_t seed = 5) {
  util::Rng rng(seed);
  datasets::DatasetConfig config;
  config.scale = 0.05;  // ~200 nodes
  config.num_cautious = 8;
  return datasets::make_dataset("facebook", config, rng);
}

/// Scripted policy: requests a fixed sequence of nodes.
class ScriptedStrategy final : public Strategy {
 public:
  explicit ScriptedStrategy(std::vector<NodeId> script)
      : script_(std::move(script)) {}

  void reset(const AccuInstance&, util::Rng&) override { cursor_ = 0; }

  NodeId select(const AttackerView& view, util::Rng&) override {
    while (cursor_ < script_.size() && view.is_requested(script_[cursor_])) {
      ++cursor_;
    }
    return cursor_ < script_.size() ? script_[cursor_++] : kInvalidNode;
  }

  [[nodiscard]] std::string name() const override { return "Scripted"; }

 private:
  std::vector<NodeId> script_;
  std::size_t cursor_ = 0;
};

/// Path 0-1-2-3 where node 2 is cautious with θ=2; benefits 3/1.
AccuInstance path_instance() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  std::vector<UserClass> classes(4, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  return AccuInstance(b.build(), classes, {1.0, 1.0, 0.0, 1.0}, {1, 1, 2, 1},
                      BenefitModel::uniform(4, 3.0, 1.0));
}

TEST(FaultConfigTest, ValidationRejectsBadRates) {
  FaultConfig config;
  config.drop_rate = -0.1;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.drop_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.drop_rate = 1.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.drop_rate = 0.5;
  config.timeout_rate = 0.6;  // sum > 1
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.timeout_rate = 0.5;  // sum == 1 is fine
  EXPECT_NO_THROW(config.validate());
}

TEST(FaultConfigTest, UniformSplitsEvenly) {
  const FaultConfig config = FaultConfig::uniform(0.2, 5);
  EXPECT_DOUBLE_EQ(config.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.timeout_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.transient_rate, 0.05);
  EXPECT_DOUBLE_EQ(config.rate_limit_rate, 0.05);
  EXPECT_EQ(config.suspension_rounds, 5u);
  EXPECT_DOUBLE_EQ(config.total_rate(), 0.2);
  EXPECT_THROW(FaultConfig::uniform(1.5), InvalidArgument);
}

TEST(FaultModelTest, ZeroRateNeverFaultsAndDrawsNothing) {
  FaultModel model(FaultConfig{}, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.next(), FaultKind::kNone);
}

TEST(FaultModelTest, DeterministicStream) {
  const FaultConfig config = FaultConfig::uniform(0.5);
  FaultModel a(config, 7);
  FaultModel b(config, 7);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(FaultModelTest, RatesAreRoughlyHonoured) {
  FaultConfig config;
  config.drop_rate = 0.3;
  config.rate_limit_rate = 0.1;
  FaultModel model(config, 13);
  int drops = 0, limits = 0, none = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    switch (model.next()) {
      case FaultKind::kDrop: ++drops; break;
      case FaultKind::kRateLimit: ++limits; break;
      case FaultKind::kNone: ++none; break;
      default: FAIL() << "unexpected fault kind";
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(limits) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(none) / n, 0.6, 0.02);
}

// --- the byte-identity guarantee ------------------------------------------

std::vector<std::unique_ptr<Strategy>> roster() {
  std::vector<std::unique_ptr<Strategy>> out;
  out.push_back(std::make_unique<AbmStrategy>(0.5, 0.5));
  out.push_back(std::make_unique<AbmStrategy>(1.0, 0.0));
  out.push_back(std::make_unique<MaxDegreeStrategy>());
  out.push_back(std::make_unique<PageRankStrategy>());
  out.push_back(std::make_unique<RandomStrategy>());
  out.push_back(std::make_unique<BatchedAbmStrategy>(
      PotentialWeights{0.5, 0.5}, 10));
  return out;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].target, b.trace[i].target) << "request " << i;
    EXPECT_EQ(a.trace[i].accepted, b.trace[i].accepted) << "request " << i;
    EXPECT_EQ(a.trace[i].fault, b.trace[i].fault) << "request " << i;
    EXPECT_EQ(a.trace[i].attempt, b.trace[i].attempt) << "request " << i;
    // Bit-exact, not approximately equal: the loops must perform the very
    // same arithmetic.
    EXPECT_EQ(a.trace[i].benefit_before, b.trace[i].benefit_before);
    EXPECT_EQ(a.trace[i].benefit_after, b.trace[i].benefit_after);
  }
  EXPECT_EQ(a.total_benefit, b.total_benefit);
  EXPECT_EQ(a.num_accepted, b.num_accepted);
  EXPECT_EQ(a.num_cautious_friends, b.num_cautious_friends);
  EXPECT_EQ(a.friends, b.friends);
}

TEST(SimulateWithFaultsTest, ZeroFaultsIsByteIdenticalToSimulate) {
  const AccuInstance instance = tiny_instance();
  util::Rng truth_rng(21);
  const Realization truth = Realization::sample(instance, truth_rng);
  for (auto& pristine : roster()) {
    util::Rng rng_a(77);
    const SimulationResult expected =
        simulate(instance, truth, *pristine, 40, rng_a);
    FaultModel no_faults(FaultConfig{}, 1234);
    util::Rng rng_b(77);
    const SimulationResult actual = simulate_with_faults(
        instance, truth, *pristine, 40, rng_b, no_faults);
    SCOPED_TRACE(pristine->name());
    expect_identical(expected, actual);
    EXPECT_EQ(actual.num_faulted, 0u);
    EXPECT_EQ(actual.num_retries, 0u);
    EXPECT_EQ(actual.rounds_suspended, 0u);
    EXPECT_EQ(actual.num_abandoned, 0u);
  }
}

TEST(SimulateWithFaultsTest, RetryWrapIsNoOpWithoutFaults) {
  // Wrapping must not consume strategy randomness: the wrapped policy's
  // zero-fault trace equals the bare policy's byte for byte.
  const AccuInstance instance = tiny_instance();
  util::Rng truth_rng(22);
  const Realization truth = Realization::sample(instance, truth_rng);
  auto bare = std::make_unique<AbmStrategy>(0.5, 0.5);
  util::Rng rng_a(5);
  const SimulationResult expected =
      simulate(instance, truth, *bare, 40, rng_a);
  RetryingStrategy wrapped(std::make_unique<AbmStrategy>(0.5, 0.5),
                           util::RetryPolicy::exponential_jitter(3));
  FaultModel no_faults(FaultConfig{}, 9);
  util::Rng rng_b(5);
  const SimulationResult actual =
      simulate_with_faults(instance, truth, wrapped, 40, rng_b, no_faults);
  expect_identical(expected, actual);
}

// --- fault semantics -------------------------------------------------------

TEST(SimulateWithFaultsTest, BareStrategyAbandonsEveryFault) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  FaultConfig config;
  config.drop_rate = 1.0;  // every attempt is lost
  FaultModel faults(config, 3);
  ScriptedStrategy strategy({0, 1, 3});
  util::Rng rng(1);
  const SimulationResult result =
      simulate_with_faults(instance, truth, strategy, 10, rng, faults);
  // Three targets, each dropped once and written off; the strategy then
  // has nothing left and stops.
  ASSERT_EQ(result.trace.size(), 3u);
  for (const RequestRecord& r : result.trace) {
    EXPECT_EQ(r.fault, FaultKind::kDrop);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.attempt, 0u);
    EXPECT_DOUBLE_EQ(r.marginal(), 0.0);
  }
  EXPECT_EQ(result.num_faulted, 3u);
  EXPECT_EQ(result.num_abandoned, 3u);
  EXPECT_EQ(result.num_retries, 0u);
  EXPECT_EQ(result.num_accepted, 0u);
  EXPECT_DOUBLE_EQ(result.total_benefit, 0.0);
}

TEST(SimulateWithFaultsTest, RateLimitSuspendsAndBudgetKeepsTicking) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  FaultConfig config;
  config.rate_limit_rate = 1.0;
  config.suspension_rounds = 3;
  FaultModel faults(config, 4);
  ScriptedStrategy strategy({0, 1, 3});
  util::Rng rng(1);
  const SimulationResult result =
      simulate_with_faults(instance, truth, strategy, 5, rng, faults);
  // Round 1: request 0, rate-limited.  Rounds 2-4: suspension stalls.
  // Round 5: request 1, rate-limited.  Budget exhausted.
  ASSERT_EQ(result.trace.size(), 5u);
  EXPECT_EQ(result.trace[0].fault, FaultKind::kRateLimit);
  EXPECT_EQ(result.trace[1].fault, FaultKind::kSuspensionStall);
  EXPECT_EQ(result.trace[1].target, kInvalidNode);
  EXPECT_EQ(result.trace[2].fault, FaultKind::kSuspensionStall);
  EXPECT_EQ(result.trace[3].fault, FaultKind::kSuspensionStall);
  EXPECT_EQ(result.trace[4].fault, FaultKind::kRateLimit);
  EXPECT_EQ(result.num_faulted, 2u);
  EXPECT_EQ(result.rounds_suspended, 3u);
}

TEST(SimulateWithFaultsTest, SuspensionTruncatesAtBudget) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  FaultConfig config;
  config.rate_limit_rate = 1.0;
  config.suspension_rounds = 10;  // longer than the remaining budget
  FaultModel faults(config, 4);
  ScriptedStrategy strategy({0});
  util::Rng rng(1);
  const SimulationResult result =
      simulate_with_faults(instance, truth, strategy, 4, rng, faults);
  ASSERT_EQ(result.trace.size(), 4u);  // 1 fault + 3 stalls, then budget out
  EXPECT_EQ(result.rounds_suspended, 3u);
}

TEST(RetryingStrategyTest, RetriesThenAbandonsAfterPolicyExhausted) {
  const AccuInstance instance = path_instance();
  const Realization truth = Realization::certain(instance);
  FaultConfig config;
  config.transient_rate = 1.0;  // every attempt errors
  FaultModel faults(config, 6);
  RetryingStrategy strategy(
      std::make_unique<ScriptedStrategy>(std::vector<NodeId>{0}),
      util::RetryPolicy::fixed(/*retries=*/2, /*every=*/1));
  util::Rng rng(1);
  const SimulationResult result =
      simulate_with_faults(instance, truth, strategy, 10, rng, faults);
  // Attempt 0 faults, two retries fault, then the policy gives up.
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(result.trace[0].attempt, 0u);
  EXPECT_EQ(result.trace[1].attempt, 1u);
  EXPECT_EQ(result.trace[2].attempt, 2u);
  for (const RequestRecord& r : result.trace) {
    EXPECT_EQ(r.target, 0u);
    EXPECT_EQ(r.fault, FaultKind::kTransient);
  }
  EXPECT_EQ(result.num_faulted, 3u);
  EXPECT_EQ(result.num_retries, 2u);
  EXPECT_EQ(result.num_abandoned, 1u);
}

TEST(RetryingStrategyTest, RetryRecoversBenefitUnderFaults) {
  // Statistical, not per-seed: with heavy drops, retrying must write off
  // far fewer targets than the fault-blind behaviour.
  const AccuInstance instance = tiny_instance(17);
  FaultConfig config;
  config.drop_rate = 0.4;
  util::RunningStat abandoned_bare, abandoned_retry;
  util::RunningStat benefit_bare, benefit_retry;
  for (std::uint64_t run = 0; run < 8; ++run) {
    util::Rng truth_rng(100 + run);
    const Realization truth = Realization::sample(instance, truth_rng);
    {
      AbmStrategy bare(0.5, 0.5);
      FaultModel faults(config, 500 + run);
      util::Rng rng(run);
      const SimulationResult r =
          simulate_with_faults(instance, truth, bare, 60, rng, faults);
      abandoned_bare.add(r.num_abandoned);
      benefit_bare.add(r.total_benefit);
    }
    {
      RetryingStrategy retrying(std::make_unique<AbmStrategy>(0.5, 0.5),
                                util::RetryPolicy::exponential_jitter(4));
      FaultModel faults(config, 500 + run);
      util::Rng rng(run);
      const SimulationResult r =
          simulate_with_faults(instance, truth, retrying, 60, rng, faults);
      abandoned_retry.add(r.num_abandoned);
      benefit_retry.add(r.total_benefit);
      EXPECT_GT(r.num_retries, 0u);
    }
  }
  EXPECT_LT(abandoned_retry.mean(), abandoned_bare.mean());
  EXPECT_GT(benefit_retry.mean(), benefit_bare.mean());
}

TEST(RetryingStrategyTest, NameReflectsPolicy) {
  RetryingStrategy s(std::make_unique<MaxDegreeStrategy>(),
                     util::RetryPolicy::fixed(3));
  EXPECT_EQ(s.name(), "MaxDegree+retry(fixed)");
}

// --- golden determinism ----------------------------------------------------

TEST(FaultedDeterminismTest, SameSeedSameFaultConfigSameTrace) {
  const AccuInstance instance = tiny_instance();
  util::Rng truth_rng(3);
  const Realization truth = Realization::sample(instance, truth_rng);
  const FaultConfig config = FaultConfig::uniform(0.3);
  auto run_once = [&]() {
    RetryingStrategy strategy(std::make_unique<AbmStrategy>(0.5, 0.5),
                              util::RetryPolicy::exponential_jitter(3));
    FaultModel faults(config, 11);
    util::Rng rng(8);
    return simulate_with_faults(instance, truth, strategy, 50, rng, faults);
  };
  expect_identical(run_once(), run_once());
}

ExperimentConfig faulted_config() {
  ExperimentConfig config;
  config.budget = 25;
  config.samples = 2;
  config.runs = 2;
  config.seed = 19;
  config.faults = FaultConfig::uniform(0.25);
  config.retry = util::RetryPolicy::exponential_jitter(3);
  return config;
}

InstanceFactory tiny_factory() {
  return [](std::uint32_t sample, std::uint64_t seed) {
    util::Rng rng(seed + sample);
    datasets::DatasetConfig config;
    config.scale = 0.05;
    config.num_cautious = 8;
    return datasets::make_dataset("facebook", config, rng);
  };
}

std::vector<StrategyFactory> two_strategies() {
  return {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };
}

TEST(FaultedDeterminismTest, ThreadCountInvariance) {
  ExperimentConfig config = faulted_config();
  config.threads = 1;
  const ExperimentResult sequential =
      run_experiment(tiny_factory(), two_strategies(), config);
  config.threads = 4;
  const ExperimentResult parallel =
      run_experiment(tiny_factory(), two_strategies(), config);
  for (const char* name : {"ABM", "Random"}) {
    const TraceAggregator& a = sequential.by_name(name);
    const TraceAggregator& b = parallel.by_name(name);
    EXPECT_DOUBLE_EQ(a.total_benefit().mean(), b.total_benefit().mean());
    EXPECT_DOUBLE_EQ(a.faulted_requests().mean(),
                     b.faulted_requests().mean());
    EXPECT_DOUBLE_EQ(a.retries().mean(), b.retries().mean());
    EXPECT_DOUBLE_EQ(a.suspended_rounds().mean(),
                     b.suspended_rounds().mean());
    EXPECT_DOUBLE_EQ(a.abandoned_targets().mean(),
                     b.abandoned_targets().mean());
    for (std::size_t i = 0; i < config.budget; ++i) {
      EXPECT_DOUBLE_EQ(a.cumulative_benefit().at(i).mean(),
                       b.cumulative_benefit().at(i).mean());
    }
  }
}

TEST(FaultedDeterminismTest, ExperimentAccumulatesFaultStats) {
  const ExperimentResult result =
      run_experiment(tiny_factory(), two_strategies(), faulted_config());
  const TraceAggregator& abm = result.by_name("ABM");
  EXPECT_GT(abm.faulted_requests().mean(), 0.0);
  EXPECT_GT(abm.retries().mean(), 0.0);
  EXPECT_TRUE(result.failures.empty());
}

// --- worker exception capture ----------------------------------------------

class ThrowingStrategy final : public Strategy {
 public:
  NodeId select(const AttackerView&, util::Rng&) override {
    throw std::runtime_error("deliberate failure");
  }
  [[nodiscard]] std::string name() const override { return "Throwing"; }
};

TEST(RunExperimentTest, WorkerExceptionsAreCapturedPerCell) {
  ExperimentConfig config;
  config.budget = 10;
  config.samples = 2;
  config.runs = 3;
  config.seed = 23;
  const std::vector<StrategyFactory> strategies = {
      {"Throwing", [] { return std::make_unique<ThrowingStrategy>(); }},
  };
  const ExperimentResult result =
      run_experiment(tiny_factory(), strategies, config);
  EXPECT_EQ(result.failures.size(), 6u);  // every cell fails, none crashes
  for (const CellFailure& failure : result.failures) {
    EXPECT_NE(failure.error.find("deliberate failure"), std::string::npos);
  }
  EXPECT_EQ(result.by_name("Throwing").total_benefit().count(), 0u);
}

TEST(RunExperimentTest, InstanceFactoryFailureIsReportedPerSample) {
  ExperimentConfig config;
  config.budget = 10;
  config.samples = 2;
  config.runs = 2;
  config.seed = 29;
  const InstanceFactory factory = [](std::uint32_t sample, std::uint64_t seed)
      -> AccuInstance {
    if (sample == 1) throw std::runtime_error("no such dataset");
    util::Rng rng(seed);
    datasets::DatasetConfig dconfig;
    dconfig.scale = 0.05;
    dconfig.num_cautious = 8;
    return datasets::make_dataset("facebook", dconfig, rng);
  };
  const ExperimentResult result =
      run_experiment(factory, two_strategies(), config);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].sample, 1u);
  EXPECT_EQ(result.failures[0].run, CellFailure::kAllRuns);
  // Sample 0's cells still aggregated.
  EXPECT_EQ(result.by_name("ABM").total_benefit().count(), 2u);
}

}  // namespace
}  // namespace accu
