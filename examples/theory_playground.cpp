// Theory playground: the paper's §III machinery on inspectable instances.
//
//   * reproduces the Fig. 1 non-submodularity witness with exact marginals;
//   * computes the realization-specific and adaptive submodular ratios by
//     brute force on a small instance;
//   * evaluates Lemma 4's closed form next to the exact ratio;
//   * pits the exact adaptive greedy against the exact optimal adaptive
//     policy and checks Theorem 1's bound 1 − e^{−λ}.
//
// Usage: ./build/examples/theory_playground [--seed=5]

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>

#include "core/strategies/abm.hpp"
#include "core/theory/exact.hpp"
#include "core/theory/ratios.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace accu;

void fig1_witness() {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const std::vector<UserClass> classes = {UserClass::kReckless,
                                          UserClass::kCautious};
  const AccuInstance instance(b.build(), classes, {1.0, 0.0}, {1, 1},
                              BenefitModel({2.0, 5.0}, {1.0, 1.0}));
  const auto worlds = enumerate_realizations(instance);
  AttackerView empty(instance);
  AttackerView informed(instance);
  informed.record_acceptance(0, worlds.front().first);
  std::printf("Fig. 1 witness: Δ(v1|∅) = %.1f, Δ(v1|{v2 accepted}) = %.1f\n",
              exact_marginal_gain(empty, 1, worlds),
              exact_marginal_gain(informed, 1, worlds));
  std::printf("  ⇒ the marginal gain *increased* as the observation grew: "
              "not adaptive submodular.\n\n");
}

void ratios_and_bound(std::uint64_t seed) {
  // A 6-node instance with one cautious hub (θ=2): 0-1-2 triangle plus the
  // hub 3 attached to 1 and 2, pendant 4-0, and a probabilistic edge 5-2.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(0, 2, 1.0);
  b.add_edge(1, 3, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(0, 4, 1.0);
  b.add_edge(2, 5, 0.5);
  std::vector<UserClass> classes(6, UserClass::kReckless);
  classes[3] = UserClass::kCautious;
  util::Rng rng(seed);
  std::vector<double> q = {1.0, 0.5, 1.0, 0.0, 1.0, 0.7};
  const AccuInstance instance(
      b.build(), classes, q, {1, 1, 1, 2, 1, 1},
      BenefitModel::paper_default(classes, 2.0, 12.0, 1.0));

  const Realization certain = Realization::certain(instance);
  const double rasr = realization_submodular_ratio(instance, certain);
  const double lambda = adaptive_submodular_ratio(instance);
  const double lemma4 = lemma4_lambda(instance, certain);
  std::printf("Submodularity ratios on the 6-node playground instance:\n");
  std::printf("  RASR λ_φ (certain world, brute force) = %.4f\n", rasr);
  std::printf("  adaptive submodular ratio λ = min_φ λ_φ = %.4f\n", lambda);
  std::printf("  Lemma 4 closed-form estimate           = %.4f\n\n", lemma4);

  const auto worlds = enumerate_realizations(instance);
  util::Table table({"k", "greedy (exact)", "optimal (exact)", "ratio",
                     "Theorem-1 bound"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    const double greedy = exact_policy_value(
        instance, [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }, k,
        worlds);
    const double optimal = optimal_adaptive_value(instance, k, worlds);
    table.row()
        .cell_int(k)
        .cell(greedy, 3)
        .cell(optimal, 3)
        .cell(optimal > 0 ? greedy / optimal : 1.0, 4)
        .cell(theorem1_ratio(lambda, k, k), 4);
  }
  std::cout << "Exact adaptive greedy vs exact optimal policy "
               "(Theorem 1 says ratio ≥ bound):\n";
  table.print(std::cout);
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("seed", "seed for the playground instance (default 5)");
  opts.check_unknown();
  fig1_witness();
  ratios_and_bound(static_cast<std::uint64_t>(opts.get_int("seed", 5)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
