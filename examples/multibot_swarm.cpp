// Multi-bot swarm: splitting one attack budget across a bot coalition.
//
// Demonstrates the multi-bot extension (src/core/multibot): m colluding
// socialbots that pool observations and harvested information but hold
// separate friendships — so cautious users' mutual-friend thresholds must
// be met by each bot on its own.  The example sweeps the coalition size at
// a fixed total budget and reports the latency/effectiveness trade-off,
// plus a per-bot breakdown for one swarm.
//
// Usage: ./build/examples/multibot_swarm [--scale=0.04] [--k=200]
//        [--seed=11]

#include <cstdio>
#include <exception>
#include <iostream>
#include <map>

#include "core/multibot/multibot.hpp"
#include "datasets/datasets.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  opts.declare("scale", "network scale vs the 81k-node snapshot (default "
                        "0.04)")
      .declare("k", "total friend-request budget (default 200)")
      .declare("repeats", "repetitions per swarm size (default 5)")
      .declare("seed", "random seed (default 11)");
  opts.check_unknown();
  const double scale = opts.get_double("scale", 0.04);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 200));
  const auto repeats =
      static_cast<std::uint32_t>(opts.get_int("repeats", 5));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));

  util::Rng rng(seed);
  datasets::DatasetConfig dataset_config;
  dataset_config.scale = scale;
  const AccuInstance instance =
      datasets::make_dataset("twitter", dataset_config, rng);
  std::printf("Twitter-like network: %u users (%u cautious), budget %u\n\n",
              instance.num_nodes(), instance.num_cautious(), k);

  util::Table sweep({"#bots", "rounds", "benefit", "±95%",
                     "cautious friends", "coalition friends"});
  for (const BotId bots : {1u, 2u, 4u, 8u}) {
    util::RunningStat benefit, cautious, rounds, friends;
    for (std::uint32_t r = 0; r < repeats; ++r) {
      util::Rng run_rng = rng.split(bots * 100 + r);
      const MultiBotRealization truth =
          MultiBotRealization::sample(instance, bots, run_rng);
      MultiBotAbm coalition({0.5, 0.5});
      util::Rng policy_rng = run_rng.split(1);
      const MultiBotResult result =
          simulate_multibot(instance, truth, coalition, k, bots, policy_rng);
      benefit.add(result.total_benefit);
      cautious.add(result.num_cautious_friends);
      rounds.add(result.rounds);
      friends.add(static_cast<double>(result.coalition_friends.size()));
    }
    sweep.row()
        .cell_int(bots)
        .cell(rounds.mean(), 1)
        .cell(benefit.mean(), 1)
        .cell(benefit.ci95_halfwidth(), 1)
        .cell(cautious.mean(), 2)
        .cell(friends.mean(), 1);
  }
  std::cout << "== Swarm size sweep (fixed total budget) ==\n";
  sweep.print(std::cout);

  // Per-bot anatomy of one 4-bot attack.
  {
    util::Rng run_rng = rng.split(424242);
    const MultiBotRealization truth =
        MultiBotRealization::sample(instance, 4, run_rng);
    MultiBotAbm coalition({0.5, 0.5});
    util::Rng policy_rng = run_rng.split(1);
    const MultiBotResult result =
        simulate_multibot(instance, truth, coalition, k, 4, policy_rng);
    std::map<BotId, std::pair<int, int>> per_bot;  // requests, accepts
    for (const MultiBotRequestRecord& r : result.trace) {
      ++per_bot[r.bot].first;
      per_bot[r.bot].second += r.accepted;
    }
    util::Table anatomy({"bot", "requests", "accepted", "acceptance rate"});
    for (const auto& [bot, counts] : per_bot) {
      anatomy.row()
          .cell_int(bot)
          .cell_int(counts.first)
          .cell_int(counts.second)
          .cell(counts.first > 0 ? static_cast<double>(counts.second) /
                                       counts.first
                                 : 0.0,
                3);
    }
    std::cout << "\n== Anatomy of one 4-bot attack (" << result.rounds
              << " rounds, benefit "
              << util::Table::format(result.total_benefit, 1) << ") ==\n";
    anatomy.print(std::cout);
  }

  std::cout << "\nReading: the swarm finishes in ~k/m rounds, but each bot "
               "must rebuild mutual\nfriends from scratch, so cautious "
               "captures shrink as the budget fragments —\none persistent "
               "identity beats a burst of shallow ones against threshold "
               "defenses.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
