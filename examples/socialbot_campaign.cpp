// Socialbot campaign: a full attack study on a Twitter-like network.
//
// Generates a synthetic OSN with 100 cautious high-profile users (the
// paper's §IV setup), then runs every policy — ABM, the classic adaptive
// greedy, MaxDegree, PageRank, Random — against identical ground truths and
// prints a campaign report: benefit over time, who got the cautious users,
// and how request outcomes differed.
//
// Usage: ./build/examples/socialbot_campaign [--scale=0.05] [--k=300]
//        [--samples=2] [--runs=3] [--seed=7]

#include <cstdio>
#include <exception>
#include <iostream>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "datasets/datasets.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace accu;
  util::Options opts(argc, argv);
  opts.declare("scale", "network scale vs the 81k-node snapshot (default "
                        "0.05 ≈ 4k users)")
      .declare("k", "friend-request budget (default 300)")
      .declare("samples", "sample networks (default 2)")
      .declare("runs", "runs per network (default 3)")
      .declare("seed", "random seed (default 7)");
  opts.check_unknown();
  const double scale = opts.get_double("scale", 0.05);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 300));

  datasets::DatasetConfig dataset_config;
  dataset_config.scale = scale;
  const InstanceFactory factory = [dataset_config](std::uint32_t sample,
                                                   std::uint64_t seed) {
    util::Rng rng(seed + 31 * sample);
    return datasets::make_dataset("twitter", dataset_config, rng);
  };

  const std::vector<StrategyFactory> strategies = {
      {"ABM(0.5,0.5)", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }},
      {"Greedy(wI=0)", [] { return std::make_unique<AbmStrategy>(1.0, 0.0); }},
      {"MaxDegree", [] { return std::make_unique<MaxDegreeStrategy>(); }},
      {"PageRank", [] { return std::make_unique<PageRankStrategy>(); }},
      {"Random", [] { return std::make_unique<RandomStrategy>(); }},
  };

  ExperimentConfig config;
  config.budget = k;
  config.samples = static_cast<std::uint32_t>(opts.get_int("samples", 2));
  config.runs = static_cast<std::uint32_t>(opts.get_int("runs", 3));
  config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));

  std::printf("Simulating a socialbot campaign on a Twitter-like network "
              "(scale %.3f, budget %u, %u networks x %u runs)...\n",
              scale, k, config.samples, config.runs);
  const ExperimentResult result = run_experiment(factory, strategies, config);

  util::Table summary({"policy", "benefit", "±95%", "friends",
                       "cautious friends", "benefit@k/4", "benefit@k/2"});
  for (std::size_t i = 0; i < result.strategy_names.size(); ++i) {
    const TraceAggregator& agg = result.aggregates[i];
    summary.row()
        .cell(result.strategy_names[i])
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.accepted_requests().mean(), 1)
        .cell(agg.cautious_friends().mean(), 2)
        .cell(agg.cumulative_benefit().at(k / 4 - 1).mean(), 1)
        .cell(agg.cumulative_benefit().at(k / 2 - 1).mean(), 1);
  }
  std::cout << "\n== Campaign summary ==\n";
  summary.print(std::cout);

  // How the attack unfolds: the ABM benefit curve vs the best static
  // baseline at 10 checkpoints.
  const TraceAggregator& abm = result.by_name("ABM(0.5,0.5)");
  const TraceAggregator& pagerank = result.by_name("PageRank");
  util::Table curve({"requests", "ABM benefit", "PageRank benefit",
                     "ABM frac→cautious"});
  for (std::uint32_t c = 1; c <= 10; ++c) {
    const std::uint32_t at = k * c / 10;
    util::RunningStat frac;
    for (std::uint32_t i = k * (c - 1) / 10; i < at; ++i) {
      frac.add(abm.cautious_fraction().at(i).mean());
    }
    curve.row()
        .cell_int(at)
        .cell(abm.cumulative_benefit().at(at - 1).mean(), 1)
        .cell(pagerank.cumulative_benefit().at(at - 1).mean(), 1)
        .cell(frac.mean(), 3);
  }
  std::cout << "\n== Attack progression ==\n";
  curve.print(std::cout);

  std::cout << "\nReading: ABM invests mid-campaign requests into friends "
               "of cautious users\n(the frac→cautious column shows when the "
               "thresholds are harvested), which is\nexactly the behaviour "
               "behind Fig. 3 of the paper.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
