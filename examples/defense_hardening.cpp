// Defense hardening: the defender's view of ACCU.
//
// The paper frames cautious (linear-threshold) acceptance as a *defense*
// adopted by high-profile users.  This example quantifies how much that
// defense is worth: it sweeps (a) the acceptance threshold fraction and
// (b) the number of users adopting cautious behaviour, measures how much
// benefit an optimal-ish attacker (ABM) still extracts, and reports the
// protection rate of the cautious population.
//
// Usage: ./build/examples/defense_hardening [--scale=0.3] [--k=150]

#include <cstdio>
#include <exception>
#include <iostream>

#include "core/experiment.hpp"
#include "core/strategies/abm.hpp"
#include "datasets/datasets.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace accu;

struct SweepPoint {
  double theta_fraction;
  std::uint32_t num_cautious;
};

TraceAggregator attack(const SweepPoint& point, double scale,
                       std::uint32_t k, std::uint64_t seed) {
  datasets::DatasetConfig dataset_config;
  dataset_config.scale = scale;
  dataset_config.threshold_fraction = point.theta_fraction;
  dataset_config.num_cautious = point.num_cautious;
  const InstanceFactory factory = [dataset_config](std::uint32_t sample,
                                                   std::uint64_t s) {
    util::Rng rng(s + 97 * sample);
    return datasets::make_dataset("facebook", dataset_config, rng);
  };
  const std::vector<StrategyFactory> attacker = {
      {"ABM", [] { return std::make_unique<AbmStrategy>(0.5, 0.5); }}};
  ExperimentConfig config;
  config.budget = k;
  config.samples = 2;
  config.runs = 3;
  config.seed = seed;
  return run_experiment(factory, attacker, config).aggregates.front();
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("scale", "network scale vs the 4k Facebook snapshot "
                        "(default 0.3)")
      .declare("k", "attacker budget (default 150)")
      .declare("seed", "random seed (default 23)");
  opts.check_unknown();
  const double scale = opts.get_double("scale", 0.3);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 150));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 23));

  std::printf("Evaluating the cautious-user defense on a Facebook-like "
              "network (scale %.2f, attacker budget %u)...\n\n", scale, k);

  // (a) Threshold sweep: how strict must cautious users be?
  util::Table thresholds({"θ fraction", "attacker benefit",
                          "cautious friends (of 50)", "protection rate"});
  for (const double theta : {0.1, 0.2, 0.3, 0.4, 0.5, 0.7}) {
    const TraceAggregator agg =
        attack({theta, 50}, scale, k, seed);
    const double befriended = agg.cautious_friends().mean();
    thresholds.row()
        .cell(theta, 1)
        .cell(agg.total_benefit().mean(), 1)
        .cell(befriended, 2)
        .cell(1.0 - befriended / 50.0, 3);
  }
  std::cout << "== Defense A: raising the mutual-friend threshold ==\n";
  thresholds.print(std::cout);

  // (b) Adoption sweep: how many users need to adopt the behaviour?
  util::Table adoption({"#cautious users", "attacker benefit",
                        "cautious friends", "protection rate"});
  for (const std::uint32_t count : {10u, 25u, 50u, 100u}) {
    const TraceAggregator agg =
        attack({0.3, count}, scale, k, seed + 1);
    const double befriended = agg.cautious_friends().mean();
    adoption.row()
        .cell_int(count)
        .cell(agg.total_benefit().mean(), 1)
        .cell(befriended, 2)
        .cell(1.0 - befriended / count, 3);
  }
  std::cout << "\n== Defense B: growing the cautious population ==\n";
  adoption.print(std::cout);

  std::cout <<
      "\nReading: higher thresholds directly cut how many high-profile "
      "accounts the\nattacker reaches, but the paper's Fig. 6 caveat shows "
      "in the benefit column —\nonce cautious users are expensive enough to "
      "reach, the attacker reallocates\nits budget to reckless users, so "
      "total benefit saturates rather than collapses.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
