// Quickstart: the smallest complete tour of the public API.
//
//   1. Build a probabilistic social network.
//   2. Mark a cautious (linear-threshold) user and set benefits.
//   3. Sample a ground-truth realization.
//   4. Run the ABM socialbot for a handful of friend requests.
//   5. Inspect the per-request trace.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/simulator.hpp"
#include "core/strategies/abm.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

int main() {
  using namespace accu;

  // 1. A 6-user network: a small friendship cluster around user 2, who is
  //    the high-profile target.  Edge probabilities are the attacker's
  //    prior knowledge (p_uv from the paper's network model).
  graph::GraphBuilder builder(6);
  builder.add_edge(0, 1, 0.9);
  builder.add_edge(1, 2, 0.8);
  builder.add_edge(2, 3, 0.8);
  builder.add_edge(3, 4, 0.9);
  builder.add_edge(1, 4, 0.5);
  builder.add_edge(4, 5, 0.7);
  const Graph network = builder.build();

  // 2. User 2 is cautious: it only accepts once it shares 2 mutual friends
  //    with the requester.  Everyone else accepts with probability q_u.
  std::vector<UserClass> classes(6, UserClass::kReckless);
  classes[2] = UserClass::kCautious;
  const std::vector<double> accept_prob = {0.9, 0.8, 0.0, 0.7, 0.9, 0.6};
  const std::vector<std::uint32_t> threshold = {1, 1, 2, 1, 1, 1};
  // Benefits: the cautious user is worth 50 as a friend; everyone else 2;
  // a friend-of-friend always yields 1.
  const BenefitModel benefits =
      BenefitModel::paper_default(classes, 2.0, 50.0, 1.0);
  const AccuInstance instance(network, classes, accept_prob, threshold,
                              benefits);

  // 3. The hidden ground truth: which potential edges actually exist and
  //    which users would accept.
  util::Rng rng(/*seed=*/2019);
  const Realization truth = Realization::sample(instance, rng);

  // 4. The attack: ABM with the paper's default weights w_D = w_I = 0.5
  //    and a budget of 5 friend requests.
  AbmStrategy abm(0.5, 0.5);
  const SimulationResult result = simulate(instance, truth, abm, 5, rng);

  // 5. Report.
  std::printf("ABM attack, budget 5:\n");
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const RequestRecord& r = result.trace[i];
    std::printf("  request %zu -> user %u (%s): %s, marginal benefit %.1f\n",
                i + 1, r.target, r.cautious_target ? "cautious" : "reckless",
                r.accepted ? "accepted" : "rejected", r.marginal());
  }
  std::printf("total benefit: %.1f  (friends: %u, cautious friends: %u)\n",
              result.total_benefit, result.num_accepted,
              result.num_cautious_friends);
  return 0;
}
