// accu_merge — combines shard checkpoint files into one result.
//
//   accu_merge [--out=MERGED] [--report=FILE] [--curves=FILE]
//              [--title=TEXT] SHARD.ckpt [SHARD.ckpt ...]
//
// Each input is a checkpoint written by a (possibly sharded) sweep over
// the *same* experiment — same seed, grid shape, budget, strategy roster,
// and fault/retry configuration; the headers are validated against each
// other and a mismatch is an error.  Shard identities may differ or
// overlap: cells are deduplicated by their global task index, and torn
// tails are dropped per shard exactly as on resume.  The merged aggregates
// replay in fixed task order, so they are bit-identical to an unsharded
// sequential sweep whenever every grid cell is present; missing cells are
// reported (exit code 3 unless --allow-missing) so a partial merge is
// never mistaken for a complete one.
//
// `accu merge` is the same operation behind the main CLI.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/exit_codes.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace accu;

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("out", "write the merged (unsharded) checkpoint here")
      .declare("report", "write a Markdown report of the merged result")
      .declare("curves", "write long-format curve CSV of the merged result")
      .declare("title", "report title (default 'accu merge')")
      .declare("allow-missing",
               "exit 0 even when grid cells are absent from every input");
  opts.check_unknown();
  const std::vector<std::string>& paths = opts.positional();
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: accu_merge [--out=MERGED] [--report=FILE] "
                 "[--curves=FILE] SHARD.ckpt [SHARD.ckpt ...]\n%s",
                 opts.help_text().c_str());
    return util::exit_code::kUsage;
  }

  const ShardMergeOutcome merged =
      merge_shard_checkpoints(paths, opts.get("out", ""));

  util::Table shards({"input", "cells"});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    shards.row().cell(paths[i]).cell_int(
        static_cast<long long>(merged.shard_cells[i]));
  }
  shards.print(std::cout);
  const std::size_t grid = static_cast<std::size_t>(merged.config.samples) *
                           merged.config.runs;
  std::printf("merged %zu of %zu cells (%zu duplicate, %zu missing)\n",
              merged.cells_merged, grid, merged.duplicate_cells,
              merged.cells_missing);

  util::Table table({"policy", "benefit", "±95%", "friends",
                     "cautious friends"});
  for (std::size_t s = 0; s < merged.result.strategy_names.size(); ++s) {
    const TraceAggregator& agg = merged.result.aggregates[s];
    table.row()
        .cell(merged.result.strategy_names[s])
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.accepted_requests().mean(), 1)
        .cell(agg.cautious_friends().mean(), 2);
  }
  table.print(std::cout);

  if (opts.has("out")) {
    std::printf("merged checkpoint written to %s\n",
                opts.get("out", "").c_str());
  }
  if (opts.has("report")) {
    std::ofstream os(opts.get("report", ""));
    if (!os) throw IoError("cannot open --report file");
    ReportOptions report_options;
    report_options.title = opts.get("title", "accu merge");
    write_markdown_report(merged.result, merged.config, os, report_options);
    std::printf("markdown report written to %s\n",
                opts.get("report", "").c_str());
  }
  if (opts.has("curves")) {
    std::ofstream os(opts.get("curves", ""));
    if (!os) throw IoError("cannot open --curves file");
    write_curves_csv(merged.result, os);
    std::printf("curve CSV written to %s\n", opts.get("curves", "").c_str());
  }
  if (merged.cells_missing > 0 && !opts.get_bool("allow-missing", false)) {
    std::fprintf(stderr,
                 "accu_merge: %zu grid cells missing — run the absent "
                 "shards and re-merge (--allow-missing accepts a partial "
                 "merge)\n",
                 merged.cells_missing);
    return util::exit_code::kMissingCells;
  }
  return util::exit_code::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accu_merge: %s\n", e.what());
    return util::exit_code::kFailure;
  }
}
