#!/usr/bin/env bash
# CI entry point: build + test twice.
#
#   1. plain RelWithDebInfo         — the configuration users run
#   2. Debug with ACCU_SANITIZE=ON  — AddressSanitizer + UBSan
#
# Usage: tools/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build (RelWithDebInfo) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}"

echo "=== sanitized build (Debug, address+undefined) ==="
cmake -B build-ci-san -S . -DCMAKE_BUILD_TYPE=Debug -DACCU_SANITIZE=ON
cmake --build build-ci-san -j "${JOBS}"
ctest --test-dir build-ci-san --output-on-failure -j "${JOBS}"

echo "=== CI OK ==="
