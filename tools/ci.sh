#!/usr/bin/env bash
# CI entry point: build + test three times.
#
#   1. plain RelWithDebInfo             — the configuration users run
#   2. Debug with ACCU_SANITIZE=ON      — AddressSanitizer + UBSan
#   3. Debug with ACCU_SANITIZE=thread  — ThreadSanitizer over the
#      concurrency-heavy suites (experiment pool, watchdog, checkpoint
#      appends, cancellation)
#
# Every ctest run carries --timeout 300 so a hung test (deadlocked pool,
# stuck watchdog) fails the stage instead of wedging CI.
#
# Usage: tools/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build (RelWithDebInfo) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}" --timeout 300

echo "=== sanitized build (Debug, address+undefined) ==="
cmake -B build-ci-san -S . -DCMAKE_BUILD_TYPE=Debug -DACCU_SANITIZE=address
cmake --build build-ci-san -j "${JOBS}"
ctest --test-dir build-ci-san --output-on-failure -j "${JOBS}" --timeout 300

echo "=== sanitized build (Debug, thread) ==="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DACCU_SANITIZE=thread
cmake --build build-ci-tsan -j "${JOBS}"
ctest --test-dir build-ci-tsan --output-on-failure -j "${JOBS}" --timeout 300 \
  -R 'Experiment|Checkpoint|Fault|Resilience|Backoff|Cancel|Crc|AtomicFile|DurableAppender'

echo "=== CI OK ==="
