#!/usr/bin/env bash
# CI entry point: build + test three configurations, plus an engine gate.
#
#   1. plain RelWithDebInfo             — the configuration users run
#   2. Debug with ACCU_SANITIZE=ON      — AddressSanitizer + UBSan
#   3. engine gate                      — the engine-equivalence suite under
#      ASan + the micro_core allocations-per-cell ceiling
#   4. shard round-trip                 — a sweep split into three shard
#      processes (one SIGKILLed mid-run and resumed) merged with accu_merge
#      must reproduce the unsharded report byte-for-byte
#   5. pack round-trip                  — `accu pack` converts a generated
#      instance to the binary .accui format; the mmap-loaded sweep report
#      must match the text-path report byte-for-byte, the unpack leg must
#      reproduce the original text bytes, and a truncated pack must be
#      rejected
#   6. serve drill                      — the real `accu serve` daemon is
#      SIGKILLed mid-job, restarted, SIGTERM-drained, and restarted again;
#      the finished report must match the direct sweep byte-for-byte.
#      Run once per durability mode (strict, grouped), plus a
#      batched-feedback pass (the pending-revelation queue and the
#      checkpoint `feedback` header must survive the same abuse)
#   7. Debug with ACCU_SANITIZE=thread  — ThreadSanitizer over the
#      concurrency-heavy suites (experiment pool, watchdog, checkpoint
#      appends, cancellation, serve journal/daemon, intra-cell task pool)
#   8. forced-ISA dispatch              — the Score suites re-run under
#      every kernel table the host supports (ACCU_SIMD=scalar/avx2/neon),
#      in the plain, ASan, and TSan trees: every dispatch tail must be
#      bit-identical and sanitizer-clean, not just the auto pick
#   9. bench trend gate                 — accu_bench_diff compares a fresh
#      `micro_core --json` run against the committed BENCH_micro_core.json
#      so a kernel cannot silently lose its speedup
#  10. -march=native build              — ACCU_NATIVE=ON (tuning flags;
#      results must stay bit-identical, pinned by the same test suite)
#  11. scalar-only build                — ACCU_SCALAR_ONLY=ON compiles the
#      vector TUs out entirely, keeping the portable fallback a
#      first-class build instead of dead code on vector hosts
#
# Every ctest run carries --timeout 300 so a hung test (deadlocked pool,
# stuck watchdog) fails the stage instead of wedging CI.
#
# Usage: tools/ci.sh [jobs]   (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build (RelWithDebInfo) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "${JOBS}"
ctest --test-dir build-ci --output-on-failure -j "${JOBS}" --timeout 300

echo "=== sanitized build (Debug, address+undefined) ==="
cmake -B build-ci-san -S . -DCMAKE_BUILD_TYPE=Debug -DACCU_SANITIZE=address
cmake --build build-ci-san -j "${JOBS}"
ctest --test-dir build-ci-san --output-on-failure -j "${JOBS}" --timeout 300

echo "=== engine + score-engine equivalence under ASan + allocation budget ==="
# The round-engine refactor and the SoA score engine are pinned two ways:
# the byte-identical-trace property suites (Engine*) and the bit-exact
# score-kernel suites (Score*) re-run under AddressSanitizer (pooling and
# incremental caches must not trade correctness or memory safety for
# speed), and `micro_core --json` must keep pooled sweep cells under the
# recorded allocations-per-cell ceiling (the O(1)-allocations property of
# SimWorkspace).
ctest --test-dir build-ci-san --output-on-failure -j "${JOBS}" --timeout 300 \
  -R 'Engine|Score|Shard|Merge|Serve|IoEnv|GroupCommit|CrashPoint|Feedback|InstanceFormat'
./build-ci/bench/micro_core --json build-ci/BENCH_micro_core.json
ALLOCS="$(sed -n 's/.*"pooled_allocs_per_cell": \([0-9.]*\).*/\1/p' \
  build-ci/BENCH_micro_core.json)"
BASELINE="$(grep -v '^#' bench/micro_core_allocs.baseline | head -1)"
echo "pooled allocs/cell: ${ALLOCS} (ceiling ${BASELINE})"
awk -v a="${ALLOCS}" -v b="${BASELINE}" 'BEGIN { exit !(a <= b) }' || {
  echo "FAIL: pooled allocs/cell ${ALLOCS} exceeds baseline ${BASELINE}" >&2
  exit 1
}

echo "=== bench trend vs committed BENCH_micro_core.json ==="
# Directional per-key comparison of the fresh snapshot against the
# committed one; the generous 2x threshold catches a lost vector path or
# an accidentally quadratic loop, not shared-runner jitter.
./build-ci/tools/accu_bench_diff BENCH_micro_core.json \
  build-ci/BENCH_micro_core.json --threshold=2.0

echo "=== forced-ISA dispatch: Score suites under every kernel table ==="
# The determinism contract (score_simd.hpp) says every dispatch tail is
# bit-identical; re-run the score/kernel suites with each supported table
# forced via ACCU_SIMD, in the plain and ASan trees.
ISAS="scalar"
if grep -q avx2 /proc/cpuinfo 2> /dev/null; then ISAS="${ISAS} avx2"; fi
case "$(uname -m)" in aarch64 | arm64) ISAS="${ISAS} neon" ;; esac
for ISA in ${ISAS}; do
  echo "--- ACCU_SIMD=${ISA} (plain + ASan) ---"
  ACCU_SIMD="${ISA}" ctest --test-dir build-ci --output-on-failure \
    -j "${JOBS}" --timeout 300 -R 'Score'
  ACCU_SIMD="${ISA}" ctest --test-dir build-ci-san --output-on-failure \
    -j "${JOBS}" --timeout 300 -R 'Score'
done

echo "=== shard → kill → resume → merge round-trip ==="
# End-to-end check of the sharding contract with real processes: three
# shard sweeps (one SIGKILLed mid-run, then resumed from its surviving
# checkpoint bytes) merge into a report byte-identical to the unsharded
# single-process run — only the title line differs.
RT="build-ci/shard-roundtrip"
rm -rf "${RT}"
mkdir -p "${RT}"
./build-ci/tools/accu generate --dataset=facebook --scale=0.05 \
  --cautious=8 --out="${RT}/net.accu" > /dev/null
SWEEP=(./build-ci/tools/accu compare "--in=${RT}/net.accu" --k=12 --runs=6 \
  --seed=9 --fault-rate=0.2 --retry=exp)
"${SWEEP[@]}" "--report=${RT}/reference.md" > /dev/null
for i in 0 2; do
  "${SWEEP[@]}" "--shard=${i}/3" "--resume=${RT}/shard${i}.ckpt" > /dev/null
done
"${SWEEP[@]}" --shard=1/3 "--resume=${RT}/shard1.ckpt" > /dev/null 2>&1 &
VICTIM=$!
sleep 0.05
kill -9 "${VICTIM}" 2> /dev/null || true
wait "${VICTIM}" 2> /dev/null || true
"${SWEEP[@]}" --shard=1/3 "--resume=${RT}/shard1.ckpt" > /dev/null
./build-ci/tools/accu_merge "--out=${RT}/merged.ckpt" \
  "--report=${RT}/merged.md" "${RT}"/shard*.ckpt > /dev/null
diff <(tail -n +2 "${RT}/reference.md") <(tail -n +2 "${RT}/merged.md") || {
  echo "FAIL: merged shard report differs from the unsharded reference" >&2
  exit 1
}
echo "shard round-trip OK: merged report matches the unsharded sweep"

echo "=== binary format: pack → mmap-load → sweep → byte-identical report ==="
# End-to-end check of the .accui contract with the real CLI: the same
# logical instance, loaded once from text and once from the packed binary
# (mmap, zero parse), must drive `accu compare` to byte-identical reports.
# Both runs use the same relative --in path so even the title line (which
# embeds the path) matches — the diff below is over the whole file.  The
# unpack leg re-checks text → binary → text byte-identity at the CLI
# level, and a deliberately truncated pack must be rejected, not loaded.
PK="build-ci/pack-roundtrip"
rm -rf "${PK}"
mkdir -p "${PK}/text" "${PK}/bin"
./build-ci/tools/accu generate --dataset=facebook --scale=0.05 \
  --cautious=8 --seed=4 --out="${PK}/text/net.accu" > /dev/null
./build-ci/tools/accu pack "--in=${PK}/text/net.accu" \
  "--out=${PK}/bin/net.accu" > /dev/null
./build-ci/tools/accu unpack "--in=${PK}/bin/net.accu" \
  "--out=${PK}/unpacked.accu" > /dev/null
cmp "${PK}/text/net.accu" "${PK}/unpacked.accu" || {
  echo "FAIL: text -> pack -> unpack is not byte-identical" >&2
  exit 1
}
ACCU_BIN="$(pwd)/build-ci/tools/accu"
(cd "${PK}/text" && "${ACCU_BIN}" compare --in=net.accu --k=12 --runs=6 \
  --seed=9 --report=report.md > /dev/null)
(cd "${PK}/bin" && "${ACCU_BIN}" compare --in=net.accu --k=12 --runs=6 \
  --seed=9 --report=report.md > /dev/null)
cmp "${PK}/text/report.md" "${PK}/bin/report.md" || {
  echo "FAIL: mmap-loaded sweep report differs from the text-path report" >&2
  exit 1
}
head -c 1000 "${PK}/bin/net.accu" > "${PK}/torn.accui"
if ./build-ci/tools/accu stats "--in=${PK}/torn.accui" > /dev/null 2>&1; then
  echo "FAIL: a truncated .accui file loaded instead of being rejected" >&2
  exit 1
fi
echo "pack round-trip OK: binary sweep report matches the text path"

echo "=== serve drill: kill -9 mid-flight, restart, SIGTERM drain, finish ==="
# End-to-end check of the serve contract with the real daemon binary, run
# once per durability mode: a submitted compare job is SIGKILLed
# mid-flight, the restarted daemon adopts the journal and resumes the
# surviving shard checkpoints, a SIGTERM lands mid-run and must drain
# cleanly (exit 0), and a final restart completes the job — whose report
# must match the direct unsharded `accu compare` byte-for-byte below the
# title line.  `grouped` widens the crash window to the open fsync group,
# so passing both modes pins the group-commit recovery contract with real
# processes, not just the in-process CrashPoint enumeration.
SV="build-ci/serve-drill"
rm -rf "${SV}"
mkdir -p "${SV}"
./build-ci/tools/accu generate --dataset=facebook --scale=0.03 \
  --cautious=8 --out="${SV}/net.accu" > /dev/null
./build-ci/tools/accu compare "--in=${SV}/net.accu" --k=8 --runs=6000 \
  --seed=11 --threads=1 "--report=${SV}/reference.md" > /dev/null
for MODE in strict grouped; do
  ROOT="${SV}/root-${MODE}"
  ./build-ci/tools/accu serve submit "--root=${ROOT}" --kind=compare \
    "--in=${SV}/net.accu" --k=8 --runs=6000 --seed=11 \
    "--durability=${MODE}" --group-cells=64 --group-ms=50 \
    --name=drill > /dev/null
  SERVE=(./build-ci/tools/accu serve run "--root=${ROOT}" --workers=3 \
    --poll-ms=10 --crash-budget=9 --exit-when-idle)
  "${SERVE[@]}" > /dev/null 2>&1 &
  DAEMON=$!
  sleep 0.35
  kill -9 "${DAEMON}" 2> /dev/null || true
  wait "${DAEMON}" 2> /dev/null || true
  "${SERVE[@]}" > /dev/null 2>&1 &
  DAEMON=$!
  sleep 0.25
  kill -TERM "${DAEMON}" 2> /dev/null || true
  DRAIN=0
  wait "${DAEMON}" || DRAIN=$?
  if [ "${DRAIN}" -ne 0 ]; then
    echo "FAIL(${MODE}): SIGTERM drain exited ${DRAIN} instead of 0" >&2
    exit 1
  fi
  "${SERVE[@]}" > /dev/null
  ./build-ci/tools/accu serve status "--root=${ROOT}"
  diff <(tail -n +2 "${SV}/reference.md") \
    <(tail -n +2 "${ROOT}/jobs/job0001/report.md") || {
    echo "FAIL(${MODE}): serve report differs from the direct sweep" >&2
    exit 1
  }
  echo "serve drill (${MODE}) OK: survived kill -9 and drained cleanly"
done

echo "=== serve drill: batched feedback survives kill -9 resume ==="
# A non-full feedback model (DESIGN.md §15) adds a pending-revelation
# queue to every simulation and a `feedback` header line to shard
# checkpoints (part of the resume fingerprint); this pass pins that a
# restricted-feedback job recovers from kill -9 to the same report
# bytes as the direct restricted-feedback sweep.
./build-ci/tools/accu compare "--in=${SV}/net.accu" --k=8 --runs=6000 \
  --seed=11 --threads=1 --feedback=batched --feedback-delay=4 \
  "--report=${SV}/reference-batched.md" > /dev/null
ROOT="${SV}/root-feedback"
./build-ci/tools/accu serve submit "--root=${ROOT}" --kind=compare \
  "--in=${SV}/net.accu" --k=8 --runs=6000 --seed=11 \
  --feedback=batched --feedback-delay=4 --durability=grouped \
  --group-cells=64 --group-ms=50 --name=drill > /dev/null
SERVE=(./build-ci/tools/accu serve run "--root=${ROOT}" --workers=3 \
  --poll-ms=10 --crash-budget=9 --exit-when-idle)
"${SERVE[@]}" > /dev/null 2>&1 &
DAEMON=$!
sleep 0.35
kill -9 "${DAEMON}" 2> /dev/null || true
wait "${DAEMON}" 2> /dev/null || true
"${SERVE[@]}" > /dev/null
./build-ci/tools/accu serve status "--root=${ROOT}"
diff <(tail -n +2 "${SV}/reference-batched.md") \
  <(tail -n +2 "${ROOT}/jobs/job0001/report.md") || {
  echo "FAIL(feedback): batched-feedback serve report differs from direct" >&2
  exit 1
}
echo "serve drill (batched feedback) OK: queue state survived kill -9"

echo "=== sanitized build (Debug, thread) ==="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DACCU_SANITIZE=thread
cmake --build build-ci-tsan -j "${JOBS}"
ctest --test-dir build-ci-tsan --output-on-failure -j "${JOBS}" --timeout 300 \
  -R 'Experiment|Checkpoint|Fault|Resilience|Backoff|Cancel|Crc|AtomicFile|DurableAppender|Serve|IoEnv|GroupCommit|CrashPoint|Feedback|InstanceFormat'
# The intra-cell task pool and chunked rescore under TSan, per kernel
# table: the pool's claim/join protocol and the const-scratch sharing of
# score_batch_ranged must be race-free under every dispatch tail.
for ISA in ${ISAS}; do
  echo "--- ACCU_SIMD=${ISA} (TSan) ---"
  ACCU_SIMD="${ISA}" ctest --test-dir build-ci-tsan --output-on-failure \
    -j "${JOBS}" --timeout 300 -R 'Score'
done

echo "=== -march=native build (RelWithDebInfo, ACCU_NATIVE) ==="
# Tuning flags only: -ffp-contract=off is global, so the tuned build must
# pass the same bit-exactness suites as the portable one.
cmake -B build-ci-native -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACCU_NATIVE=ON
cmake --build build-ci-native -j "${JOBS}"
ctest --test-dir build-ci-native --output-on-failure -j "${JOBS}" \
  --timeout 300 -R 'Score|Engine|Experiment|Realization|Abm|Lookahead'

echo "=== scalar-only build (RelWithDebInfo, ACCU_SCALAR_ONLY) ==="
# The portable fallback as its own build: vector TUs compiled out, scalar
# the only dispatch tail.  The full suite must pass — results are
# bit-identical to the vector builds by the determinism contract.
cmake -B build-ci-scalar -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACCU_SCALAR_ONLY=ON
cmake --build build-ci-scalar -j "${JOBS}"
ctest --test-dir build-ci-scalar --output-on-failure -j "${JOBS}" \
  --timeout 300

echo "=== CI OK ==="
