// accu — command-line front end to the ACCU library.
//
// Subcommands:
//   generate   build a synthetic dataset instance and write it to a file
//   stats      print network/model statistics of an instance file
//   attack     run one policy against an instance and print the trace
//   compare    run the full policy roster and print a comparison table
//   assess     defender-side vulnerability report (Monte Carlo ABM)
//   ratio      brute-force submodularity ratios of a small instance
//   pack       convert a text instance to the mmap-able binary format
//   unpack     convert a binary instance back to the text format
//   synth      out-of-core generator: build a large binary instance
//
// Every subcommand accepts --help.  Instances travel either as the text
// format of core/instance_io.hpp or the binary ".accui" format of
// core/instance_format.hpp; every --in=FILE auto-detects which by magic,
// so a `generate`d or `synth`ed file reproduces exactly the same
// experiment anywhere.

#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/defense.hpp"
#include "core/experiment.hpp"
#include "core/feedback.hpp"
#include "core/instance_format.hpp"
#include "core/instance_io.hpp"
#include "core/report.hpp"
#include "core/score_simd.hpp"
#include "core/strategies/abm.hpp"
#include "core/strategies/baselines.hpp"
#include "core/multibot/multibot.hpp"
#include "core/strategies/batched.hpp"
#include "core/strategies/oracle.hpp"
#include "core/strategies/retrying.hpp"
#include "core/theory/ratios.hpp"
#include "datasets/datasets.hpp"
#include "datasets/stream_gen.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "util/cancel.hpp"
#include "util/exit_codes.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

// Set by the SIGINT/SIGTERM handler and polled by the experiment watchdog:
// a first Ctrl-C stops the sweep at cell granularity (checkpoint flushed);
// sig_atomic_t is the only type a handler may portably write.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void accu_cli_signal_handler(int) { g_interrupted = 1; }

namespace {

using namespace accu;

void install_interrupt_handlers() {
  std::signal(SIGINT, accu_cli_signal_handler);
  std::signal(SIGTERM, accu_cli_signal_handler);
}

constexpr const char* kUsage =
    "usage: accu <command> [options]\n"
    "\n"
    "commands:\n"
    "  generate   build a synthetic dataset instance (--dataset, --scale,\n"
    "             --cautious, --cautious-bf, --theta, --q1, --q2, --seed,\n"
    "             --out=FILE)\n"
    "  stats      statistics of an instance (--in=FILE)\n"
    "  attack     run one policy (--in=FILE, --policy=abm|greedy|maxdegree|\n"
    "             pagerank|random|batched, --k, --wd, --wi, --batch, --seed,\n"
    "             --trace, --fault-rate, --retry, --deadline-ms,\n"
    "             --max-cell-retries, --feedback=full|myopic|delayed|\n"
    "             batched, --feedback-delay=d)\n"
    "  compare    compare the paper's policy roster (--in=FILE, --k, --runs,\n"
    "             --seed, --fault-rate, --retry, --resume=CHECKPOINT,\n"
    "             --deadline-ms, --max-cell-retries, --shard=i/n,\n"
    "             --feedback, --feedback-delay; Ctrl-C stops at cell\n"
    "             granularity and a checkpointed sweep resumes)\n"
    "  merge      combine shard checkpoints into one result (--out=MERGED,\n"
    "             --report, --curves, --allow-missing, positional shard\n"
    "             checkpoint files)\n"
    "  assess     defender vulnerability report (--in=FILE, --k, --trials,\n"
    "             --seed, --top)\n"
    "  swarm      multi-bot coalition sweep (--in=FILE, --k, --runs, --wd,\n"
    "             --wi, --seed)\n"
    "  ratio      submodularity ratios, small instances only (--in=FILE)\n"
    "  pack       text instance -> binary .accui for zero-parse mmap loads\n"
    "             (--in=FILE, --out=FILE, --no-pack-tables)\n"
    "  unpack     binary .accui -> canonical text instance (--in=FILE,\n"
    "             --out=FILE)\n"
    "  synth      out-of-core generator, writes binary directly (--nodes,\n"
    "             --avg-degree, --alpha, --cautious, --cautious-bf,\n"
    "             --theta, --seed, --batch-bytes, --no-pack-tables,\n"
    "             --out=FILE)\n"
    "  serve      crash-safe sweep daemon (accu serve <run|submit|status|\n"
    "             stop> --root=DIR; run: --workers, --max-queued, --rate,\n"
    "             --burst, --crash-budget, --poll-ms, --exit-when-idle;\n"
    "             submit: --kind=compare|simulate|sweep plus the compare/\n"
    "             generate knobs, --feedback, --feedback-delay, --name,\n"
    "             --job-deadline-ms)\n";

AccuInstance load_instance(const util::Options& opts) {
  const std::string path = opts.get("in", "");
  if (path.empty()) {
    throw InvalidArgument("missing --in=FILE (generate one with 'accu "
                          "generate')");
  }
  return load_instance_auto(path);
}

/// Shared fault-injection knobs: `--fault-rate` spreads its value evenly
/// over the four fault kinds; `--retry` picks the recovery policy.
FaultConfig fault_config(const util::Options& opts) {
  const double rate = opts.get_double("fault-rate", 0.0);
  const auto w =
      static_cast<std::uint32_t>(opts.get_int("suspension-rounds", 3));
  return FaultConfig::uniform(rate, w);
}

util::RetryPolicy retry_policy(const util::Options& opts) {
  return util::RetryPolicy::parse(opts.get("retry", "none"));
}

/// `--feedback` / `--feedback-delay` → FeedbackModel (attack, compare).
FeedbackModel feedback_model(const util::Options& opts) {
  return FeedbackModel::parse(
      opts.get("feedback", "full"),
      static_cast<std::uint32_t>(opts.get_int("feedback-delay", 0)));
}

std::unique_ptr<Strategy> make_policy(const util::Options& opts) {
  const std::string policy = opts.get("policy", "abm");
  const double wd = opts.get_double("wd", 0.5);
  const double wi = opts.get_double("wi", 0.5);
  if (policy == "abm") return std::make_unique<AbmStrategy>(wd, wi);
  if (policy == "greedy") return std::make_unique<AbmStrategy>(1.0, 0.0);
  if (policy == "maxdegree") return std::make_unique<MaxDegreeStrategy>();
  if (policy == "pagerank") return std::make_unique<PageRankStrategy>();
  if (policy == "random") return std::make_unique<RandomStrategy>();
  if (policy == "batched") {
    const auto batch =
        static_cast<std::uint32_t>(opts.get_int("batch", 20));
    return std::make_unique<BatchedAbmStrategy>(PotentialWeights{wd, wi},
                                                batch);
  }
  throw InvalidArgument("unknown --policy=" + policy);
}

int cmd_generate(const util::Options& opts) {
  datasets::DatasetConfig config;
  config.scale = opts.get_double("scale", 0.1);
  config.num_cautious =
      static_cast<std::uint32_t>(opts.get_int("cautious", 100));
  config.cautious_friend_benefit = opts.get_double("cautious-bf", 50.0);
  config.threshold_fraction = opts.get_double("theta", 0.3);
  config.cautious_below_prob = opts.get_double("q1", 0.0);
  config.cautious_above_prob = opts.get_double("q2", 1.0);
  const std::string dataset = opts.get("dataset", "facebook");
  const std::string out = opts.get("out", dataset + ".accu");
  util::Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  // --edges=FILE ingests a real snapshot (e.g. an actual SNAP edge list)
  // instead of generating a synthetic substitute.
  const AccuInstance instance =
      opts.has("edges")
          ? datasets::make_dataset_from_edge_list(opts.get("edges", ""),
                                                  config, rng)
          : datasets::make_dataset(dataset, config, rng);
  write_instance_file(instance, out);
  std::printf("wrote %s: %u users (%u cautious), %u potential edges\n",
              out.c_str(), instance.num_nodes(), instance.num_cautious(),
              instance.graph().num_edges());
  return 0;
}

int cmd_pack(const util::Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) throw InvalidArgument("missing --in=FILE (text instance)");
  const std::string out = opts.get("out", in + ".accui");
  const AccuInstance instance =
      InstanceSource{in, InstanceSource::Format::kText}.load();
  write_instance_binary_file(instance, out, !opts.has("no-pack-tables"));
  std::printf("packed %s -> %s: %u users, %u edges%s\n", in.c_str(),
              out.c_str(), instance.num_nodes(), instance.graph().num_edges(),
              opts.has("no-pack-tables") ? "" : ", score tables embedded");
  return 0;
}

int cmd_unpack(const util::Options& opts) {
  const std::string in = opts.get("in", "");
  if (in.empty()) throw InvalidArgument("missing --in=FILE (binary instance)");
  const std::string out = opts.get("out", in + ".accu");
  const AccuInstance instance =
      InstanceSource{in, InstanceSource::Format::kBinary}.load();
  write_instance_file(instance, out);
  std::printf("unpacked %s -> %s: %u users, %u edges\n", in.c_str(),
              out.c_str(), instance.num_nodes(), instance.graph().num_edges());
  return 0;
}

int cmd_synth(const util::Options& opts) {
  datasets::StreamGenConfig config;
  config.num_nodes =
      static_cast<std::uint64_t>(opts.get_int("nodes", 1'000'000));
  config.avg_degree = opts.get_double("avg-degree", config.avg_degree);
  config.alpha = opts.get_double("alpha", config.alpha);
  config.num_cautious = static_cast<std::uint32_t>(
      opts.get_int("cautious", static_cast<long long>(config.num_cautious)));
  config.cautious_friend_benefit =
      opts.get_double("cautious-bf", config.cautious_friend_benefit);
  config.threshold_fraction =
      opts.get_double("theta", config.threshold_fraction);
  config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  config.batch_bytes = static_cast<std::uint64_t>(opts.get_int(
      "batch-bytes", static_cast<long long>(config.batch_bytes)));
  config.pack_tables = !opts.has("no-pack-tables");
  const std::string out = opts.get("out", "synth.accui");
  const datasets::StreamGenStats stats =
      datasets::generate_instance_stream(config, out);
  std::printf("wrote %s: %llu users (%u cautious), %llu potential edges, "
              "%llu spool scans\n",
              out.c_str(),
              static_cast<unsigned long long>(stats.num_nodes),
              stats.num_cautious,
              static_cast<unsigned long long>(stats.num_edges),
              static_cast<unsigned long long>(stats.spool_scans));
  return 0;
}

int cmd_stats(const util::Options& opts) {
  const AccuInstance instance = load_instance(opts);
  const Graph& g = instance.graph();
  const graph::DegreeStats degrees = graph::degree_stats(g);
  util::Rng rng(1);
  util::Table table({"metric", "value"});
  table.row().cell("users").cell_int(g.num_nodes());
  table.row().cell("potential edges").cell_int(g.num_edges());
  table.row().cell("expected edges").cell(g.expected_num_edges(), 1);
  table.row().cell("cautious users").cell_int(instance.num_cautious());
  table.row().cell("mean degree").cell(degrees.mean, 2);
  table.row().cell("max degree").cell_int(degrees.max);
  table.row().cell("median degree").cell(degrees.median, 1);
  table.row().cell("clustering (sampled)").cell(
      graph::clustering_coefficient(g, 2000, rng), 4);
  table.row().cell("deg∈[10,100] fraction").cell(
      graph::degree_window_fraction(g, 10, 100), 4);
  table.row().cell("generalized cautious model").cell(
      instance.has_generalized_cautious() ? "yes" : "no");
  table.print(std::cout);
  return 0;
}

int cmd_attack(const util::Options& opts) {
  simd::select(simd::parse_isa(opts.get("simd", "auto")));
  const AccuInstance instance = load_instance(opts);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 100));
  util::Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  const Realization truth = Realization::sample(instance, rng);
  std::unique_ptr<Strategy> policy;
  if (opts.get("policy", "abm") == "oracle") {
    // Clairvoyant upper-bound reference: needs the ground truth.
    policy = std::make_unique<ClairvoyantGreedyStrategy>(truth);
  } else {
    policy = make_policy(opts);
  }
  const FaultConfig faults_config = fault_config(opts);
  const FeedbackModel feedback = feedback_model(opts);
  const util::RetryPolicy retry = retry_policy(opts);
  if (retry.kind != util::RetryKind::kNone) {
    policy = std::make_unique<RetryingStrategy>(std::move(policy), retry);
  }
  // Optional wall-clock budget: the simulation polls the token between
  // rounds and a blown deadline either retries with a fresh policy seed
  // stream or fails the command.  Attempt 0 draws the exact same seeds as
  // an unsupervised run, so adding --deadline-ms alone never changes the
  // outcome of a run that finishes in time.
  const auto deadline_ms =
      static_cast<std::uint32_t>(opts.get_int("deadline-ms", 0));
  const auto max_retries =
      static_cast<std::uint32_t>(opts.get_int("max-cell-retries", 0));
  AttackerView view(instance);
  SimulationResult result;
  bool finished = false;
  for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    util::CancelToken token;
    if (deadline_ms > 0) {
      token.set_deadline_after(std::chrono::milliseconds(deadline_ms));
    }
    util::Rng attempt_rng = attempt == 0 ? rng : rng.split(1000 + attempt);
    util::Rng policy_rng = attempt_rng.split(1);
    view = AttackerView(instance);
    try {
      if (faults_config.total_rate() > 0.0) {
        FaultModel faults(faults_config, attempt_rng.split(2)());
        result = simulate_with_faults(instance, truth, *policy, k, policy_rng,
                                      faults, view, &token, feedback);
      } else {
        result = simulate_with_view(instance, truth, *policy, k, policy_rng,
                                    view, &token, feedback);
      }
      finished = true;
      break;
    } catch (const util::CancelledError&) {
      if (attempt < max_retries) {
        std::fprintf(stderr,
                     "attack: exceeded --deadline-ms=%u; retrying with a "
                     "fresh seed stream (attempt %u of %u)\n",
                     deadline_ms, attempt + 2, max_retries + 1);
      }
    }
  }
  if (!finished) {
    std::fprintf(stderr,
                 "attack: every attempt exceeded --deadline-ms=%u "
                 "(%u attempts); raise the deadline or --max-cell-retries\n",
                 deadline_ms, max_retries + 1);
    return util::exit_code::kFailure;
  }
  std::printf("%s, budget %u: benefit %.1f, friends %u (cautious %u)\n",
              policy->name().c_str(), k, result.total_benefit,
              result.num_accepted, result.num_cautious_friends);
  if (faults_config.total_rate() > 0.0) {
    std::printf("platform faults: %u faulted, %u retries, %u rounds "
                "suspended, %u targets abandoned\n",
                result.num_faulted, result.num_retries,
                result.rounds_suspended, result.num_abandoned);
  }
  std::printf("crawl coverage: %zu of %u potential edges observed (%.1f%%)\n",
              view.num_observed_edges(), instance.graph().num_edges(),
              100.0 * static_cast<double>(view.num_observed_edges()) /
                  std::max(1u, instance.graph().num_edges()));
  if (opts.has("dot")) {
    // Export the harvested network with role annotations.
    graph::DotOptions dot_options;
    dot_options.name = "crawl";
    dot_options.node_attributes = [&](NodeId v) {
      if (view.is_friend(v)) {
        return instance.is_cautious(v)
                   ? std::string("color=red,style=filled")
                   : std::string("color=lightblue,style=filled");
      }
      if (view.is_fof(v)) return std::string("color=gray");
      return std::string();
    };
    graph::write_dot_file(observed_graph(view), opts.get("dot", ""),
                          dot_options);
    std::printf("observed network written to %s\n",
                opts.get("dot", "").c_str());
  }
  if (opts.get_bool("trace", false)) {
    util::Table table({"#", "target", "class", "outcome", "marginal",
                       "cumulative"});
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      const RequestRecord& r = result.trace[i];
      table.row()
          .cell_int(static_cast<long long>(i + 1))
          .cell_int(r.target)
          .cell(r.cautious_target ? "cautious" : "reckless")
          .cell(r.accepted ? "accepted" : "rejected")
          .cell(r.marginal(), 1)
          .cell(r.benefit_after, 1);
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_compare(const util::Options& opts) {
  const AccuInstance instance = load_instance(opts);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 100));
  const auto runs = static_cast<std::uint32_t>(opts.get_int("runs", 10));
  ExperimentConfig config;
  config.budget = k;
  config.samples = 1;  // the instance is fixed: repeat realizations only
  config.runs = runs;
  config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  config.threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  config.cell_threads =
      static_cast<std::uint32_t>(opts.get_int("cell-threads", 1));
  config.simd = simd::parse_isa(opts.get("simd", "auto"));
  config.faults = fault_config(opts);
  config.retry = retry_policy(opts);
  config.feedback = feedback_model(opts);
  config.checkpoint_path = opts.get("resume", "");
  config.cell_deadline_ms =
      static_cast<std::uint32_t>(opts.get_int("deadline-ms", 0));
  config.max_cell_retries =
      static_cast<std::uint32_t>(opts.get_int("max-cell-retries", 0));
  config.durability.mode =
      util::DurabilityPolicy::parse_mode(opts.get("durability", "strict"));
  config.durability.group_cells = static_cast<std::uint32_t>(
      opts.get_int("group-cells", config.durability.group_cells));
  config.durability.group_ms = static_cast<std::uint32_t>(
      opts.get_int("group-ms", config.durability.group_ms));
  config.durability.validate();
  if (opts.has("shard")) {
    // This invocation runs one shard of the (sample, run) grid; per-shard
    // checkpoints merge later via `accu merge`.
    const auto shard = parse_shard_spec(opts.get("shard", ""));
    config.shard_index = shard.first;
    config.shard_count = shard.second;
  }
  // Ctrl-C (or SIGTERM) stops the sweep at cell granularity instead of
  // killing the process: completed cells stay checkpointed and resumable.
  config.interrupt_flag = &g_interrupted;
  install_interrupt_handlers();
  const InstanceFactory factory = [&instance](std::uint32_t, std::uint64_t) {
    return instance;
  };
  // The roster lives in serve/job.cpp so daemon-produced reports stay
  // byte-identical to direct compare reports.
  const std::vector<StrategyFactory> strategies = serve::compare_roster();
  const ExperimentResult result = run_experiment(factory, strategies, config);
  if (config.shard_count > 1) {
    std::fprintf(stderr,
                 "shard %u/%u: the table below covers only this shard's "
                 "cells; combine the shard checkpoints with 'accu merge'\n",
                 config.shard_index, config.shard_count);
  }
  const bool faulty = config.faults.total_rate() > 0.0;
  std::vector<std::string> headers = {"policy", "benefit", "±95%", "friends",
                                      "cautious friends"};
  if (faulty) {
    headers.insert(headers.end(),
                   {"faulted", "retries", "suspended", "abandoned"});
  }
  util::Table table(headers);
  for (std::size_t i = 0; i < result.strategy_names.size(); ++i) {
    const TraceAggregator& agg = result.aggregates[i];
    auto& row = table.row()
                    .cell(result.strategy_names[i])
                    .cell(agg.total_benefit().mean(), 1)
                    .cell(agg.total_benefit().ci95_halfwidth(), 1)
                    .cell(agg.accepted_requests().mean(), 1)
                    .cell(agg.cautious_friends().mean(), 2);
    if (faulty) {
      row.cell(agg.faulted_requests().mean(), 1)
          .cell(agg.retries().mean(), 1)
          .cell(agg.suspended_rounds().mean(), 1)
          .cell(agg.abandoned_targets().mean(), 1);
    }
  }
  table.print(std::cout);
  std::size_t errors = 0, deadlines = 0, cancelled = 0;
  for (const CellFailure& failure : result.failures) {
    switch (failure.kind) {
      case CellFailure::Kind::kError: ++errors; break;
      case CellFailure::Kind::kDeadline: ++deadlines; break;
      case CellFailure::Kind::kCancelled: ++cancelled; break;
    }
    std::fprintf(stderr,
                 "warning: cell (sample %u, run %u) %s after %u attempt%s "
                 "(%.0f ms): %s\n",
                 failure.sample, failure.run,
                 cell_failure_kind_name(failure.kind), failure.attempts,
                 failure.attempts == 1 ? "" : "s", failure.elapsed_ms,
                 failure.error.c_str());
  }
  if (!result.failures.empty() || result.cells_retried > 0) {
    std::fprintf(stderr,
                 "cells: %zu error, %zu deadline-exceeded, %zu cancelled; "
                 "%u retried after a blown deadline\n",
                 errors, deadlines, cancelled, result.cells_retried);
  }
  if (result.interrupted) {
    if (config.checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "interrupted: partial results above; use "
                   "--resume=FILE to make an interrupted sweep resumable\n");
    } else {
      std::fprintf(stderr,
                   "interrupted: completed cells are saved; resume with "
                   "--resume=%s\n",
                   config.checkpoint_path.c_str());
    }
    return util::exit_code::kInterrupted;
  }
  if (opts.has("report")) {
    std::ofstream os(opts.get("report", ""));
    if (!os) throw IoError("cannot open --report file");
    ReportOptions report_options;
    report_options.title = "accu compare — " + opts.get("in", "");
    write_markdown_report(result, config, os, report_options);
    std::printf("markdown report written to %s\n",
                opts.get("report", "").c_str());
  }
  if (opts.has("curves")) {
    std::ofstream os(opts.get("curves", ""));
    if (!os) throw IoError("cannot open --curves file");
    write_curves_csv(result, os);
    std::printf("curve CSV written to %s\n", opts.get("curves", "").c_str());
  }
  return 0;
}

int cmd_merge(const util::Options& opts) {
  const std::vector<std::string>& paths = opts.positional();
  if (paths.empty()) {
    throw InvalidArgument(
        "merge: pass the shard checkpoint files as positional arguments "
        "(accu merge --out=MERGED shard0.ckpt shard1.ckpt ...)");
  }
  const ShardMergeOutcome merged =
      merge_shard_checkpoints(paths, opts.get("out", ""));
  util::Table shards({"input", "cells"});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    shards.row().cell(paths[i]).cell_int(
        static_cast<long long>(merged.shard_cells[i]));
  }
  shards.print(std::cout);
  const std::size_t grid = static_cast<std::size_t>(merged.config.samples) *
                           merged.config.runs;
  std::printf("merged %zu of %zu cells (%zu duplicate, %zu missing)\n",
              merged.cells_merged, grid, merged.duplicate_cells,
              merged.cells_missing);
  util::Table table({"policy", "benefit", "±95%", "friends",
                     "cautious friends"});
  for (std::size_t s = 0; s < merged.result.strategy_names.size(); ++s) {
    const TraceAggregator& agg = merged.result.aggregates[s];
    table.row()
        .cell(merged.result.strategy_names[s])
        .cell(agg.total_benefit().mean(), 1)
        .cell(agg.total_benefit().ci95_halfwidth(), 1)
        .cell(agg.accepted_requests().mean(), 1)
        .cell(agg.cautious_friends().mean(), 2);
  }
  table.print(std::cout);
  if (opts.has("out")) {
    std::printf("merged checkpoint written to %s\n",
                opts.get("out", "").c_str());
  }
  if (opts.has("report")) {
    std::ofstream os(opts.get("report", ""));
    if (!os) throw IoError("cannot open --report file");
    ReportOptions report_options;
    report_options.title = "accu merge";
    write_markdown_report(merged.result, merged.config, os, report_options);
    std::printf("markdown report written to %s\n",
                opts.get("report", "").c_str());
  }
  if (opts.has("curves")) {
    std::ofstream os(opts.get("curves", ""));
    if (!os) throw IoError("cannot open --curves file");
    write_curves_csv(merged.result, os);
    std::printf("curve CSV written to %s\n", opts.get("curves", "").c_str());
  }
  if (merged.cells_missing > 0 && !opts.get_bool("allow-missing", false)) {
    std::fprintf(stderr,
                 "merge: %zu grid cells missing — run the absent shards "
                 "and re-merge (--allow-missing accepts a partial merge)\n",
                 merged.cells_missing);
    return util::exit_code::kMissingCells;
  }
  return 0;
}

int cmd_assess(const util::Options& opts) {
  const AccuInstance instance = load_instance(opts);
  defense::AttackModel model;
  model.budget = static_cast<std::uint32_t>(opts.get_int("k", 100));
  model.trials = static_cast<std::uint32_t>(opts.get_int("trials", 20));
  model.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const defense::VulnerabilityReport report =
      defense::assess(instance, model);
  std::printf("attacker benefit: %.1f ± %.1f; expected cautious capture "
              "rate: %.3f\n",
              report.attacker_benefit.mean(),
              report.attacker_benefit.ci95_halfwidth(),
              report.mean_capture_rate);
  const auto top = report.most_vulnerable(
      static_cast<std::size_t>(opts.get_int("top", 10)));
  util::Table table({"user", "degree", "θ", "capture probability"});
  for (const NodeId v : top) {
    double prob = 0.0;
    for (std::size_t i = 0; i < report.cautious_users.size(); ++i) {
      if (report.cautious_users[i] == v) prob = report.capture_probability[i];
    }
    table.row()
        .cell_int(v)
        .cell_int(instance.graph().degree(v))
        .cell_int(instance.threshold(v))
        .cell(prob, 3);
  }
  std::cout << "most vulnerable cautious users:\n";
  table.print(std::cout);
  const auto gateways = report.top_gateways(
      static_cast<std::size_t>(opts.get_int("top", 10)));
  if (!gateways.empty()) {
    util::Table gw({"gateway user", "degree",
                    "cautious captures enabled / attack"});
    for (const NodeId v : gateways) {
      gw.row()
          .cell_int(v)
          .cell_int(instance.graph().degree(v))
          .cell(report.gateway_score[v], 3);
    }
    std::cout << "gateway accounts (protect these friendships first):\n";
    gw.print(std::cout);
  }
  return 0;
}

int cmd_swarm(const util::Options& opts) {
  const AccuInstance instance = load_instance(opts);
  if (instance.has_generalized_cautious()) {
    throw InvalidArgument(
        "swarm: multi-bot attacks cover the deterministic cautious model");
  }
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 100));
  const auto repeats =
      static_cast<std::uint32_t>(opts.get_int("runs", 5));
  util::Rng rng(static_cast<std::uint64_t>(opts.get_int("seed", 1)));
  util::Table table({"#bots", "rounds", "benefit", "±95%",
                     "cautious friends"});
  for (const BotId bots : {1u, 2u, 4u, 8u}) {
    util::RunningStat benefit, cautious, rounds;
    for (std::uint32_t r = 0; r < repeats; ++r) {
      util::Rng run_rng = rng.split(bots * 1000 + r);
      const MultiBotRealization truth =
          MultiBotRealization::sample(instance, bots, run_rng);
      MultiBotAbm coalition({opts.get_double("wd", 0.5),
                             opts.get_double("wi", 0.5)});
      util::Rng policy_rng = run_rng.split(3);
      const MultiBotResult result =
          simulate_multibot(instance, truth, coalition, k, bots, policy_rng);
      benefit.add(result.total_benefit);
      cautious.add(result.num_cautious_friends);
      rounds.add(result.rounds);
    }
    table.row()
        .cell_int(bots)
        .cell(rounds.mean(), 1)
        .cell(benefit.mean(), 1)
        .cell(benefit.ci95_halfwidth(), 1)
        .cell(cautious.mean(), 2);
  }
  table.print(std::cout);
  return 0;
}

int cmd_ratio(const util::Options& opts) {
  const AccuInstance instance = load_instance(opts);
  if (instance.num_nodes() > 12) {
    throw InvalidArgument("ratio: brute force needs <= 12 users (got " +
                          std::to_string(instance.num_nodes()) + ")");
  }
  const Realization certain = Realization::certain(instance);
  std::printf("RASR λ_φ (certain world): %.6f\n",
              realization_submodular_ratio(instance, certain));
  const double lambda = adaptive_submodular_ratio(instance);
  std::printf("adaptive submodular ratio λ: %.6f\n", lambda);
  std::printf("Theorem 1 greedy guarantee 1−e^{−λ}: %.6f\n",
              theorem1_ratio(lambda, 1, 1));
  if (instance.num_cautious() == 1) {
    std::printf("Lemma 4 closed-form estimate: %.6f\n",
                lemma4_lambda(instance, certain));
  }
  return 0;
}

int cmd_serve(const util::Options& opts) {
  const std::vector<std::string>& pos = opts.positional();
  const std::string action = pos.empty() ? "" : pos[0];
  const std::string root = opts.get("root", "");
  if (root.empty()) {
    throw InvalidArgument("serve: missing --root=DIR (the daemon's state "
                          "directory)");
  }
  if (action == "run") {
    serve::ServeConfig config;
    config.root = root;
    config.workers =
        static_cast<std::uint32_t>(opts.get_int("workers", 2));
    config.admission.max_queued =
        static_cast<std::size_t>(opts.get_int("max-queued", 16));
    config.admission.start_rate = opts.get_double("rate", 4.0);
    config.admission.start_burst = opts.get_double("burst", 4.0);
    config.admission.crash_budget =
        static_cast<std::uint32_t>(opts.get_int("crash-budget", 3));
    config.poll_ms =
        static_cast<std::uint32_t>(opts.get_int("poll-ms", 50));
    config.exit_when_idle = opts.get_bool("exit-when-idle", false);
    // SIGTERM/SIGINT drain the queue at cell granularity; every
    // non-terminal job stays resumable by the next `accu serve run`.
    config.stop_flag = &g_interrupted;
    install_interrupt_handlers();
    return serve::run_daemon(config);
  }
  if (action == "submit") {
    serve::JobSpec spec;
    spec.kind = opts.get("kind", spec.kind);
    spec.instance = opts.get("in", "");
    spec.dataset = opts.get("dataset", spec.dataset);
    spec.scale = opts.get_double("scale", spec.scale);
    spec.cautious =
        static_cast<std::uint32_t>(opts.get_int("cautious", spec.cautious));
    spec.budget = static_cast<std::uint32_t>(opts.get_int("k", 100));
    spec.samples =
        static_cast<std::uint32_t>(opts.get_int("samples", spec.samples));
    spec.runs = static_cast<std::uint32_t>(opts.get_int("runs", 10));
    spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    spec.fault_rate = opts.get_double("fault-rate", 0.0);
    spec.suspension_rounds =
        static_cast<std::uint32_t>(opts.get_int("suspension-rounds", 3));
    spec.retry = opts.get("retry", "none");
    spec.feedback = opts.get("feedback", spec.feedback);
    spec.feedback_delay = static_cast<std::uint32_t>(
        opts.get_int("feedback-delay", spec.feedback_delay));
    spec.cell_deadline_ms =
        static_cast<std::uint32_t>(opts.get_int("deadline-ms", 0));
    spec.max_cell_retries =
        static_cast<std::uint32_t>(opts.get_int("max-cell-retries", 0));
    spec.deadline_ms =
        static_cast<std::uint64_t>(opts.get_int("job-deadline-ms", 0));
    spec.threads = static_cast<std::uint32_t>(opts.get_int("threads", 1));
    spec.cell_threads =
        static_cast<std::uint32_t>(opts.get_int("cell-threads", 1));
    spec.simd = opts.get("simd", "auto");
    spec.durability = opts.get("durability", spec.durability);
    spec.group_cells = static_cast<std::uint32_t>(
        opts.get_int("group-cells", spec.group_cells));
    spec.group_ms =
        static_cast<std::uint32_t>(opts.get_int("group-ms", spec.group_ms));
    // Round-trip through the descriptor parser so a bad submission fails
    // here, at the keyboard, instead of poisoning the daemon's queue.
    (void)serve::parse_job(serve::serialize_job(spec));
    std::filesystem::create_directories(root + "/spool");
    const std::string path =
        serve::submit_job(root + "/spool", spec, opts.get("name", ""));
    std::printf("queued %s\n", path.c_str());
    return util::exit_code::kOk;
  }
  if (action == "status") {
    const std::vector<serve::JobStatus> status = serve::read_status(root);
    if (status.empty()) {
      std::printf("no jobs at %s\n", root.c_str());
      return util::exit_code::kOk;
    }
    util::Table table({"job", "state", "cells", "cell ms", "eta s",
                       "crashes", "detail"});
    for (const serve::JobStatus& job : status) {
      char cells[48];
      std::snprintf(cells, sizeof cells, "%zu/%zu", job.cells_done,
                    job.cells_total);
      table.row()
          .cell(job.id)
          .cell(job.state)
          .cell(cells)
          .cell(job.ema_cell_ms, 1)
          .cell(job.eta_s, 1)
          .cell_int(static_cast<long long>(job.crashes))
          .cell(job.detail);
    }
    table.print(std::cout);
    return util::exit_code::kOk;
  }
  if (action == "stop") {
    serve::request_stop(root);
    std::printf("drain requested at %s (the daemon exits once every worker "
                "has stopped at a cell boundary)\n",
                root.c_str());
    return util::exit_code::kOk;
  }
  std::fprintf(stderr,
               "usage: accu serve <run|submit|status|stop> --root=DIR\n");
  return util::exit_code::kUsage;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return util::exit_code::kUsage;
  }
  const std::string command = argv[1];
  util::Options opts(argc - 1, argv + 1);
  opts.declare("in", "instance file to read")
      .declare("out", "output file")
      .declare("dataset", "dataset name (generate)")
      .declare("edges", "ingest a real edge-list snapshot (generate)")
      .declare("scale", "dataset scale (generate)")
      .declare("cautious", "number of cautious users (generate)")
      .declare("cautious-bf", "cautious friend benefit (generate)")
      .declare("theta", "threshold fraction (generate)")
      .declare("q1", "generalized below-threshold acceptance (generate)")
      .declare("q2", "generalized at-threshold acceptance (generate)")
      .declare("seed", "random seed")
      .declare("policy", "attack policy (attack)")
      .declare("k", "request budget")
      .declare("wd", "ABM direct weight")
      .declare("wi", "ABM indirect weight")
      .declare("batch", "batch size for --policy=batched")
      .declare("trace", "print the full request trace (attack)")
      .declare("dot", "write the observed network as GraphViz DOT (attack)")
      .declare("runs", "repetitions (compare)")
      .declare("trials", "Monte Carlo trials (assess)")
      .declare("threads", "worker threads (compare)")
      .declare("cell-threads",
               "intra-cell task-pool width; trace-invariant (compare, "
               "serve submit)")
      .declare("simd",
               "score kernel ISA: auto | scalar | avx2 | neon (attack, "
               "compare, serve submit)")
      .declare("report", "write a Markdown report (compare)")
      .declare("curves", "write long-format curve CSV (compare)")
      .declare("top", "how many users to list (assess)")
      .declare("fault-rate",
               "total per-request fault probability, split evenly over "
               "drop/timeout/transient/rate-limit (attack, compare)")
      .declare("suspension-rounds",
               "rounds lost per rate-limit suspension (default 3)")
      .declare("retry", "retry policy: none|fixed|exp (attack, compare)")
      .declare("feedback",
               "feedback model: full|myopic|delayed|batched (attack, "
               "compare, serve submit)")
      .declare("feedback-delay",
               "rounds late for --feedback=delayed, batch period for "
               "--feedback=batched")
      .declare("resume",
               "checkpoint file: load completed cells and append new ones "
               "(compare)")
      .declare("deadline-ms",
               "wall-clock budget per cell in ms; 0 = none (attack, compare)")
      .declare("max-cell-retries",
               "re-run a deadline-cancelled cell up to this many times with "
               "a fresh seed stream (attack, compare)")
      .declare("shard",
               "run one shard i/n of the (sample, run) grid (compare); "
               "merge the per-shard checkpoints with 'accu merge'")
      .declare("allow-missing",
               "exit 0 even when grid cells are absent from every input "
               "(merge)")
      .declare("root", "serve state directory (serve)")
      .declare("workers", "max concurrent worker processes (serve run)")
      .declare("max-queued", "admission bound on queued+running jobs "
               "(serve run)")
      .declare("rate", "token-bucket job-start rate per second (serve run)")
      .declare("burst", "token-bucket burst size (serve run)")
      .declare("crash-budget",
               "worker crashes before a job is quarantined (serve run)")
      .declare("poll-ms", "scheduler tick in ms (serve run)")
      .declare("exit-when-idle",
               "exit once the queue is empty and jobs are terminal "
               "(serve run)")
      .declare("name", "spool file base name (serve submit)")
      .declare("kind", "job kind: compare|simulate|sweep (serve submit)")
      .declare("samples", "sample networks per dataset (serve submit)")
      .declare("job-deadline-ms",
               "whole-job wall-clock deadline; 0 = none (serve submit)")
      .declare("durability",
               "checkpoint fsync cadence: strict (every cell, default) | "
               "grouped (every group-cells / group-ms, forced flush on "
               "stop) (compare, serve submit)")
      .declare("group-cells",
               "grouped durability: fsync every N cells (default 64)")
      .declare("group-ms",
               "grouped durability: fsync at least every T ms "
               "(default 100)")
      .declare("no-pack-tables",
               "omit the embedded score slot tables (pack, synth)")
      .declare("nodes", "user count (synth)")
      .declare("avg-degree", "target mean total degree (synth)")
      .declare("alpha", "degree-tail exponent in (2, 8] (synth)")
      .declare("batch-bytes",
               "scatter-pass bucket buffer cap in bytes (synth)");
  opts.check_unknown();
  if (command == "generate") return cmd_generate(opts);
  if (command == "stats") return cmd_stats(opts);
  if (command == "attack") return cmd_attack(opts);
  if (command == "compare") return cmd_compare(opts);
  if (command == "merge") return cmd_merge(opts);
  if (command == "assess") return cmd_assess(opts);
  if (command == "swarm") return cmd_swarm(opts);
  if (command == "ratio") return cmd_ratio(opts);
  if (command == "serve") return cmd_serve(opts);
  if (command == "pack") return cmd_pack(opts);
  if (command == "unpack") return cmd_unpack(opts);
  if (command == "synth") return cmd_synth(opts);
  std::fputs(kUsage, stderr);
  return util::exit_code::kUsage;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return dispatch(argc, argv);
  } catch (const accu::DiskFullError& e) {
    std::fprintf(stderr,
                 "accu: disk full — %s\n"
                 "accu: the checkpoint on disk is a valid prefix; free "
                 "space and rerun with the same --resume to continue\n",
                 e.what());
    return util::exit_code::kDiskFull;
  } catch (const accu::SyncFailedError& e) {
    std::fprintf(stderr,
                 "accu: fsync failed — %s\n"
                 "accu: cells synced before the failure are safe; rerun "
                 "with the same --resume once the device recovers\n",
                 e.what());
    return util::exit_code::kSyncLost;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accu: %s\n", e.what());
    return util::exit_code::kFailure;
  }
}
