// accu_bench_diff — compares two `micro_core --json` snapshots and flags
// kernel-speed regressions.
//
//   accu_bench_diff BASELINE.json CURRENT.json [--threshold=R]
//
// The committed repo-root BENCH_micro_core.json is the per-PR baseline;
// tools/ci.sh runs this tool against a freshly measured snapshot so a hot
// kernel cannot silently lose its speedup.  Comparison is directional per
// key: `*_ns` and `*allocs*` keys are better-lower, `*per_sec` and
// `*_factor` keys are better-higher, anything else is informational.  A
// key regresses when it is worse than baseline · threshold (default 2.0 —
// CI machines are noisy and share cores; the gate exists to catch a lost
// vector path or an accidentally quadratic drain, not 10% jitter).
//
// Keys present in only one snapshot are reported but never fail the run:
// the per-ISA section legitimately differs across hosts (an AVX2 box
// measures scalar+avx2 rows, an ARM box scalar+neon).
//
// Exit codes: 0 clean, 1 at least one regression, 2 usage/parse error.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/exit_codes.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace accu;

/// Flat `path.to.key` → value view of one snapshot.  micro_core emits one
/// `"key": value` pair per line with `{`/`}` nesting, which this line scan
/// follows; it is not a general JSON parser and does not need to be.
using FlatSnapshot = std::map<std::string, double>;

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

FlatSnapshot parse_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read snapshot: " + path);
  }
  FlatSnapshot flat;
  std::vector<std::string> stack;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = strip(line);
    if (t.empty() || t == "{") continue;
    if (t == "}" || t == "},") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    // `"key": ...` — split on the first colon after the closing quote.
    if (t.size() < 2 || t[0] != '"') continue;
    const std::size_t close = t.find('"', 1);
    if (close == std::string::npos) continue;
    const std::string key = t.substr(1, close - 1);
    const std::size_t colon = t.find(':', close);
    if (colon == std::string::npos) continue;
    const std::string value = strip(t.substr(colon + 1));
    if (value == "{") {
      stack.push_back(key);
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;  // string value — not tracked
    std::string full;
    for (const std::string& part : stack) full += part + ".";
    flat[full + key] = v;
  }
  return flat;
}

enum class Direction { kLowerBetter, kHigherBetter, kInfo };

Direction key_direction(const std::string& key) {
  if (key.size() >= 3 && key.compare(key.size() - 3, 3, "_ns") == 0) {
    return Direction::kLowerBetter;
  }
  if (key.find("_ns_") != std::string::npos ||
      key.find("allocs") != std::string::npos) {
    return Direction::kLowerBetter;
  }
  if (key.find("per_sec") != std::string::npos ||
      key.find("_factor") != std::string::npos) {
    return Direction::kHigherBetter;
  }
  return Direction::kInfo;
}

int run(int argc, char** argv) {
  util::Options opts(argc, argv);
  opts.declare("threshold",
               "regression ratio: fail when a key is worse than "
               "baseline x R (default 2.0)");
  opts.check_unknown();
  const std::vector<std::string>& paths = opts.positional();
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: accu_bench_diff BASELINE.json CURRENT.json "
                 "[--threshold=R]\n%s",
                 opts.help_text().c_str());
    return util::exit_code::kUsage;
  }
  const double threshold = opts.get_double("threshold", 2.0);
  if (!(threshold > 1.0)) {
    std::fprintf(stderr, "accu_bench_diff: --threshold must be > 1.0\n");
    return util::exit_code::kUsage;
  }

  const FlatSnapshot baseline = parse_snapshot(paths[0]);
  const FlatSnapshot current = parse_snapshot(paths[1]);

  util::Table table({"key", "baseline", "current", "ratio", "status"});
  int regressions = 0;
  for (const auto& [key, base] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      table.row().cell(key).cell(base, 2).cell("-").cell("-").cell(
          "missing (ok)");
      continue;
    }
    const double cur = it->second;
    const double ratio = base != 0.0 ? cur / base : 0.0;
    const Direction dir = key_direction(key);
    const char* status = "info";
    if (dir == Direction::kLowerBetter) {
      const bool bad = base > 0.0 && cur > base * threshold;
      status = bad ? "REGRESSION" : (ratio < 1.0 ? "improved" : "ok");
      regressions += bad ? 1 : 0;
    } else if (dir == Direction::kHigherBetter) {
      const bool bad = base > 0.0 && cur < base / threshold;
      status = bad ? "REGRESSION" : (ratio > 1.0 ? "improved" : "ok");
      regressions += bad ? 1 : 0;
    }
    table.row().cell(key).cell(base, 2).cell(cur, 2).cell(ratio, 2).cell(
        status);
  }
  for (const auto& [key, cur] : current) {
    if (baseline.find(key) == baseline.end()) {
      table.row().cell(key).cell("-").cell(cur, 2).cell("-").cell("new (ok)");
    }
  }
  table.print(std::cout);

  if (regressions > 0) {
    std::fprintf(stderr,
                 "accu_bench_diff: %d key(s) regressed beyond %.2fx of %s\n",
                 regressions, threshold, paths[0].c_str());
    return util::exit_code::kFailure;
  }
  std::printf("bench trend OK: no key worse than %.2fx baseline\n", threshold);
  return util::exit_code::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accu_bench_diff: %s\n", e.what());
    return accu::util::exit_code::kUsage;
  }
}
